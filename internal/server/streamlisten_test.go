package server

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"factorwindows/internal/stream"
	"factorwindows/internal/wire"
)

// streamClient wraps one persistent-stream connection for tests.
type streamClient struct {
	t  *testing.T
	c  net.Conn
	fr *wire.Reader
}

func dialStream(t *testing.T, addr string) *streamClient {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	fr := wire.NewReader(c)
	t.Cleanup(fr.Close)
	return &streamClient{t: t, c: c, fr: fr}
}

func (cl *streamClient) send(op subOp) {
	cl.t.Helper()
	line, err := json.Marshal(op)
	if err != nil {
		cl.t.Fatal(err)
	}
	if _, err := cl.c.Write(append(line, '\n')); err != nil {
		cl.t.Fatal(err)
	}
}

// next reads one frame with a test deadline.
func (cl *streamClient) next() wire.Frame {
	cl.t.Helper()
	cl.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := cl.fr.Next()
	if err != nil {
		cl.t.Fatalf("reading frame: %v", err)
	}
	return f
}

func (cl *streamClient) expectAck(want subAck) {
	cl.t.Helper()
	f := cl.next()
	if f.Kind != wire.KindControl {
		cl.t.Fatalf("expected control frame, got kind %d", f.Kind)
	}
	var got subAck
	if err := json.Unmarshal(f.Control(), &got); err != nil {
		cl.t.Fatal(err)
	}
	if got.Stream != want.Stream || got.OK != want.OK || got.EOF != want.EOF ||
		(want.Error == "") != (got.Error == "") {
		cl.t.Fatalf("ack = %+v, want %+v", got, want)
	}
}

// frameRow is one decoded result row for comparisons.
type frameRow struct {
	seq, rng, start int64
	key             uint64
	value           float64
}

// collectRows reads result frames for streamID until n rows arrived,
// failing on unexpected frames.
func (cl *streamClient) collectRows(streamID uint32, n int) []frameRow {
	cl.t.Helper()
	var out []frameRow
	for len(out) < n {
		f := cl.next()
		if f.Kind != wire.KindResults {
			cl.t.Fatalf("expected result frame, got kind %d (control=%q)", f.Kind, string(f.Control()))
		}
		if f.StreamID != streamID {
			cl.t.Fatalf("frame for stream %d, want %d", f.StreamID, streamID)
		}
		for i := 0; i < f.Rows(); i++ {
			seq, rng, _, start, _, key, value := f.Result(i)
			out = append(out, frameRow{seq: seq, rng: rng, start: start, key: key, value: value})
		}
	}
	return out
}

// TestStreamListener drives the persistent listener end to end: two
// subscriptions multiplex over one connection, frames carry consecutive
// sequence numbers per query, unsubscribe stops delivery, query
// unregistration EOFs the subscription, and a reconnect with the
// last-seen sequence resumes without loss or duplication.
func TestStreamListener(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	if _, err := s.Register("a", "SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 10))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("b", "SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 20))"); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamServer(s)
	defer ss.Close()
	go ss.Serve(ln)

	cl := dialStream(t, ln.Addr().String())
	cl.send(subOp{Op: "subscribe", Stream: 1, ID: "a", After: -1})
	cl.expectAck(subAck{Stream: 1, OK: true})
	cl.send(subOp{Op: "subscribe", Stream: 2, ID: "b", After: -1})
	cl.expectAck(subAck{Stream: 2, OK: true})
	cl.send(subOp{Op: "subscribe", Stream: 2, ID: "a", After: -1})
	cl.expectAck(subAck{Stream: 2, Error: "taken"})
	cl.send(subOp{Op: "subscribe", Stream: 3, ID: "nope", After: -1})
	cl.expectAck(subAck{Stream: 3, Error: "not found"})

	// Two keys over [0,40): window a (range 10) completes 4 instances per
	// key, window b (range 20) completes 2 per key.
	var events []stream.Event
	for tick := int64(0); tick <= 40; tick++ {
		for k := uint64(0); k < 2; k++ {
			events = append(events, stream.Event{Time: tick, Key: k, Value: 1})
		}
	}
	if _, err := s.Ingest(events); err != nil {
		t.Fatal(err)
	}

	// Rows interleave across the two streams in any order; collect each
	// stream's expected count separately by peeking at stream ids.
	want1, want2 := 8, 4
	got1, got2 := []frameRow{}, []frameRow{}
	for len(got1) < want1 || len(got2) < want2 {
		f := cl.next()
		if f.Kind != wire.KindResults {
			t.Fatalf("unexpected frame kind %d", f.Kind)
		}
		for i := 0; i < f.Rows(); i++ {
			seq, rng, _, start, _, key, value := f.Result(i)
			r := frameRow{seq: seq, rng: rng, start: start, key: key, value: value}
			switch f.StreamID {
			case 1:
				got1 = append(got1, r)
			case 2:
				got2 = append(got2, r)
			default:
				t.Fatalf("frame for unknown stream %d", f.StreamID)
			}
		}
	}
	for i, r := range got1 {
		if r.seq != int64(i) {
			t.Fatalf("stream 1 row %d has seq %d; want consecutive", i, r.seq)
		}
		if r.rng != 10 || r.value != 10 {
			t.Fatalf("stream 1 row %d = %+v; want range 10, SUM 10", i, r)
		}
	}
	for i, r := range got2 {
		if r.seq != int64(i) || r.rng != 20 || r.value != 20 {
			t.Fatalf("stream 2 row %d = %+v; want consecutive seq, range 20, SUM 20", i, r)
		}
	}

	// Unsubscribe stream 2; more events must only feed stream 1.
	cl.send(subOp{Op: "unsubscribe", Stream: 2})
	cl.expectAck(subAck{Stream: 2, OK: true})
	var more []stream.Event
	for tick := int64(41); tick <= 60; tick++ {
		for k := uint64(0); k < 2; k++ {
			more = append(more, stream.Event{Time: tick, Key: k, Value: 1})
		}
	}
	if _, err := s.Ingest(more); err != nil {
		t.Fatal(err)
	}
	next1 := cl.collectRows(1, 4)
	if next1[0].seq != int64(want1) {
		t.Fatalf("stream 1 resumed at seq %d, want %d", next1[0].seq, want1)
	}

	// Unregistering the query EOFs its subscription.
	if err := s.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	cl.expectAck(subAck{Stream: 1, EOF: true})

	// A fresh connection resumes query b from an explicit cursor: rows
	// before it are skipped, rows after it arrive exactly once.
	cl2 := dialStream(t, ln.Addr().String())
	cl2.send(subOp{Op: "subscribe", Stream: 7, ID: "b", After: 1})
	cl2.expectAck(subAck{Stream: 7, OK: true})
	resumed := cl2.collectRows(7, want2-2)
	if resumed[0].seq != 2 {
		t.Fatalf("resume after=1 started at seq %d, want 2", resumed[0].seq)
	}
}

// TestStreamListenerBinaryIngest drives the listener's binary ingest
// path: event frames interleave with JSON control lines on the same
// connection, each frame is acked with an ingest ack echoing its
// stream id, and on a durable server the ack carries durable=true plus
// the aux durability flag.
func TestStreamListenerBinaryIngest(t *testing.T) {
	s := openDurable(t, durableConfig(t.TempDir()))
	defer s.Shutdown()
	if _, err := s.Register("q", "SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 10))"); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamServer(s)
	defer ss.Close()
	go ss.Serve(ln)

	cl := dialStream(t, ln.Addr().String())
	cl.send(subOp{Op: "subscribe", Stream: 1, ID: "q", After: -1})
	cl.expectAck(subAck{Stream: 1, OK: true})

	// durableConfig sets ReorderBound 4: run ticks past the window end
	// plus the bound so [0,10) actually fires.
	var events []stream.Event
	for tick := int64(0); tick <= 15; tick++ {
		events = append(events, stream.Event{Time: tick, Key: 3, Value: 1})
	}
	if _, err := cl.c.Write(wire.AppendEventFrame(nil, events)); err != nil {
		t.Fatal(err)
	}
	// Result rows race the ingest ack (delivery is asynchronous), so
	// accept both until the ack and at least one row arrived.
	var (
		rows   []frameRow
		acked  bool
		ackFr  wire.Frame
		ackVal ingestAck
	)
	for !acked || len(rows) == 0 {
		f := cl.next()
		switch f.Kind {
		case wire.KindControl:
			ackFr = f
			if err := json.Unmarshal(f.Control(), &ackVal); err != nil {
				t.Fatal(err)
			}
			acked = true
		case wire.KindResults:
			for i := 0; i < f.Rows(); i++ {
				seq, rng, _, start, _, key, value := f.Result(i)
				rows = append(rows, frameRow{seq: seq, rng: rng, start: start, key: key, value: value})
			}
		default:
			t.Fatalf("unexpected frame kind %d", f.Kind)
		}
	}
	if !ackVal.Ingest || ackVal.Stream != 0 || ackVal.Accepted != len(events) || ackVal.Error != "" {
		t.Fatalf("ingest ack = %+v", ackVal)
	}
	if !ackVal.Durable {
		t.Fatal("durable server acked binary ingest durable=false")
	}
	if ackFr.Seq&ctrlAuxDurable == 0 {
		t.Fatalf("ack aux = %#x, durability flag missing", ackFr.Seq)
	}
	if rows[0].value != 10 || rows[0].key != 3 {
		t.Fatalf("row = %+v, want SUM 10 for key 3", rows[0])
	}

	// A non-events binary frame is a protocol error: error ack, then the
	// connection is severed.
	if _, err := cl.c.Write(wire.AppendControlFrame(nil, 9, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	for {
		cl.c.SetReadDeadline(time.Now().Add(5 * time.Second))
		g, err := cl.fr.Next()
		if err != nil {
			break // severed, as promised
		}
		if g.Kind == wire.KindControl {
			var e ingestAck
			json.Unmarshal(g.Control(), &e)
			if e.Error == "" {
				t.Fatalf("expected error ack, got %q", string(g.Control()))
			}
		}
	}
}

// TestStreamListenerNonDurableAck: without a WAL the ingest ack says
// durable=false and carries no aux flag, so clients can tell the
// difference.
func TestStreamListenerNonDurableAck(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	if _, err := s.Register("q", "SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 10))"); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamServer(s)
	defer ss.Close()
	go ss.Serve(ln)

	cl := dialStream(t, ln.Addr().String())
	if _, err := cl.c.Write(wire.AppendEventFrame(nil, []stream.Event{{Time: 1, Key: 1, Value: 1}})); err != nil {
		t.Fatal(err)
	}
	f := cl.next()
	var ack ingestAck
	if err := json.Unmarshal(f.Control(), &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Ingest || ack.Durable || f.Seq != 0 {
		t.Fatalf("non-durable ack = %+v aux=%#x", ack, f.Seq)
	}
}

// TestStreamListenerGapOnStaleCursor: subscribing with a cursor the
// ring has already evicted past yields a typed gap control frame — the
// missed count and the first available sequence — instead of silently
// resuming from the ring head.
func TestStreamListenerGapOnStaleCursor(t *testing.T) {
	s := New(Config{Shards: 1, ResultBuffer: 4})
	defer s.Close()
	if _, err := s.Register("q", "SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 1))"); err != nil {
		t.Fatal(err)
	}
	// 20 one-tick windows fire for one key; the 4-row ring keeps seqs
	// 16..19 and evicts 0..15.
	var events []stream.Event
	for tick := int64(0); tick <= 20; tick++ {
		events = append(events, stream.Event{Time: tick, Key: 1, Value: 1})
	}
	if _, err := s.Ingest(events); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamServer(s)
	defer ss.Close()
	go ss.Serve(ln)

	cl := dialStream(t, ln.Addr().String())
	cl.send(subOp{Op: "subscribe", Stream: 1, ID: "q", After: 3})
	f := cl.next()
	if f.Kind != wire.KindControl {
		t.Fatalf("expected gap control frame, got kind %d", f.Kind)
	}
	var ack subAck
	if err := json.Unmarshal(f.Control(), &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.OK || !ack.Gap || ack.First != 16 || ack.Missed != 12 {
		t.Fatalf("gap ack = %+v, want Gap first=16 missed=12", ack)
	}
	if f.Seq&ctrlAuxGap == 0 {
		t.Fatalf("gap ack aux = %#x, gap flag missing", f.Seq)
	}
	// Delivery resumes at the advertised first sequence, no duplicates.
	rows := cl.collectRows(1, 4)
	if rows[0].seq != 16 || rows[3].seq != 19 {
		t.Fatalf("rows after gap = %+v", rows)
	}

	// A fresh cursor inside the ring gets a plain ack, no gap.
	cl.send(subOp{Op: "subscribe", Stream: 2, ID: "q", After: 17})
	f = cl.next()
	var ack2 subAck
	if err := json.Unmarshal(f.Control(), &ack2); err != nil {
		t.Fatal(err)
	}
	if !ack2.OK || ack2.Gap || f.Seq != 0 {
		t.Fatalf("in-window subscribe ack = %+v aux=%#x", ack2, f.Seq)
	}
	rows = cl.collectRows(2, 2)
	if rows[0].seq != 18 {
		t.Fatalf("resume inside window started at %d, want 18", rows[0].seq)
	}
}

// TestStreamListenerClose pins shutdown: closing the StreamServer severs
// connections without disturbing the underlying Server.
func TestStreamListenerClose(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, err := s.Register("q", "SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 10))"); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamServer(s)
	serveDone := make(chan error, 1)
	go func() { serveDone <- ss.Serve(ln) }()

	cl := dialStream(t, ln.Addr().String())
	cl.send(subOp{Op: "subscribe", Stream: 1, ID: "q", After: -1})
	cl.expectAck(subAck{Stream: 1, OK: true})

	ss.Close()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after Close, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	cl.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := cl.fr.Next(); err != nil {
			break // connection severed
		}
	}
	// The HTTP-facing server still works.
	if _, err := s.Ingest([]stream.Event{{Time: 1, Key: 1, Value: 1}}); err != nil {
		t.Fatalf("server broken after StreamServer close: %v", err)
	}
}
