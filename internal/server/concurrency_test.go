package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"factorwindows/internal/reorder"
	"factorwindows/internal/stream"
)

// TestConcurrentClients hammers the Go-level API from many goroutines —
// parallel ingesters, query churn, and result/stat readers — and then
// checks the stable query's result stream for internal consistency.
// Its real teeth are `go test -race`.
func TestConcurrentClients(t *testing.T) {
	s := New(Config{Shards: 4, Factors: true, ReorderBound: 256, Policy: reorder.Adjust})
	defer s.Close()
	if _, err := s.Register("base", demoQuery1); err != nil {
		t.Fatal(err)
	}

	var clock atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 40; i++ {
				base := clock.Add(4)
				batch := make([]stream.Event, 24)
				for j := range batch {
					batch[j] = stream.Event{
						Time:  base + int64(r.Intn(4)),
						Key:   uint64(r.Intn(6)),
						Value: float64(r.Intn(50)),
					}
				}
				if _, err := s.Ingest(batch); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(w)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				id := fmt.Sprintf("churn%d-%d", c, i)
				if _, err := s.Register(id, demoQuery2); err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				if _, _, err := s.Results(id, -1, 0); err != nil {
					t.Errorf("read %s: %v", id, err)
				}
				if err := s.Unregister(id); err != nil {
					t.Errorf("unregister %s: %v", id, err)
				}
			}
		}(c)
	}
	var readers sync.WaitGroup
	for rdr := 0; rdr < 3; rdr++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, _, err := s.Results("base", -1, 0)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				for i := 1; i < len(rows); i++ {
					if rows[i].Seq <= rows[i-1].Seq {
						t.Errorf("non-monotonic seq %d after %d", rows[i].Seq, rows[i-1].Seq)
						return
					}
				}
				s.StatsNow()
				s.Queries()
			}
		}()
	}

	wg.Wait() // ingesters and churners are bounded loops
	close(stop)
	readers.Wait()

	st := s.StatsNow()
	if st.Ingested != int64(4*40*24) {
		t.Fatalf("ingested = %d", st.Ingested)
	}
	if st.Queries != 1 {
		t.Fatalf("queries = %d", st.Queries)
	}
	rows, _, err := s.Results("base", -1, 0)
	if err != nil || len(rows) == 0 {
		t.Fatalf("base delivered %d rows, err %v", len(rows), err)
	}
	for _, r := range rows {
		if r.End-r.Start != r.Range {
			t.Fatalf("malformed instance %+v", r)
		}
	}
}

// TestConcurrentHTTP exercises the full HTTP surface concurrently:
// ingest batches, NDJSON streams, cursor reads, a live result stream, a
// checkpoint, and register/unregister churn, all in flight at once.
func TestConcurrentHTTP(t *testing.T) {
	s := New(Config{Shards: 2, Factors: true, ReorderBound: 512, Policy: reorder.Adjust})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, ct, body string) (*http.Response, error) {
		return http.Post(ts.URL+path, ct, strings.NewReader(body))
	}
	if resp, err := post("/queries?id=base", "text/plain", demoQuery1); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v %v", err, resp)
	}

	// A streaming reader that lives across the whole burst.
	streamCtx, cancelStream := context.WithCancel(context.Background())
	defer cancelStream()
	streamDone := make(chan int)
	go func() {
		n := 0
		defer func() { streamDone <- n }()
		req, _ := http.NewRequestWithContext(streamCtx, "GET", ts.URL+"/queries/base/stream?after=-1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var row ResultRow
			if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
				t.Errorf("stream row: %v", err)
				return
			}
			n++
		}
	}()

	var clock atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 20; i++ {
				base := clock.Add(8)
				if w == 0 {
					var b strings.Builder
					for j := 0; j < 32; j++ {
						fmt.Fprintf(&b, "{\"time\":%d,\"key\":%d,\"value\":%d}\n",
							base+int64(r.Intn(8)), r.Intn(5), r.Intn(30))
					}
					resp, err := post("/ingest", "application/x-ndjson", b.String())
					if err != nil || resp.StatusCode != http.StatusOK {
						t.Errorf("ndjson ingest: %v %v", err, resp)
						return
					}
					resp.Body.Close()
					continue
				}
				var rows []string
				for j := 0; j < 32; j++ {
					rows = append(rows, fmt.Sprintf("{\"time\":%d,\"key\":%d,\"value\":%d}",
						base+int64(r.Intn(8)), r.Intn(5), r.Intn(30)))
				}
				resp, err := post("/ingest", "application/json", "["+strings.Join(rows, ",")+"]")
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("json ingest: %v %v", err, resp)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			id := fmt.Sprintf("extra%d", i)
			resp, err := post("/queries", "application/json",
				fmt.Sprintf(`{"id":%q,"query":%q}`, id, demoQuery2))
			if err != nil || resp.StatusCode != http.StatusCreated {
				t.Errorf("churn register: %v %v", err, resp)
				return
			}
			resp.Body.Close()
			req, _ := http.NewRequest("DELETE", ts.URL+"/queries/"+id, nil)
			if resp, err = http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
				t.Errorf("churn delete: %v %v", err, resp)
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			for _, path := range []string{"/stats", "/queries", "/queries/base/results?after=-1&limit=64", "/checkpoint"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: %v %v", path, err, resp)
					return
				}
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()

	// Push one flushing event so the stream has rows, then end it by
	// unregistering the query: the stream must drain and terminate.
	resp, err := post("/ingest", "application/json", `[{"time":100000,"key":0,"value":1}]`)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("flush ingest: %v %v", err, resp)
	}
	resp.Body.Close()
	req, _ := http.NewRequest("DELETE", ts.URL+"/queries/base", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete base: %v %v", err, resp)
	}
	resp.Body.Close()
	if n := <-streamDone; n == 0 {
		t.Fatal("stream delivered no rows")
	}
}
