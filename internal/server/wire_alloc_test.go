package server

import (
	"bytes"
	"io"
	"testing"

	"factorwindows/internal/reorder"
	"factorwindows/internal/stream"
	"factorwindows/internal/window"
	"factorwindows/internal/wire"
)

// TestZeroAllocWireSteadyState extends the engine's zero-alloc
// guarantee across the binary wire paths: once buffers are warm,
// decoding event frames into the engine and encoding drained ring runs
// into result frames both run without heap allocations — the full
// binary ingest→engine→egress loop allocates only at the HTTP layer.
func TestZeroAllocWireSteadyState(t *testing.T) {
	t.Run("ingest", func(t *testing.T) {
		s := New(Config{Shards: 2, Policy: reorder.Adjust})
		defer s.Close()
		if _, err := s.Register("q", "SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 20))"); err != nil {
			t.Fatal(err)
		}
		// Frames of 512 rows over 4 keys. Re-ingesting the same body
		// under the adjust policy clamps the repeated times to the
		// release horizon, so every measured round still folds events
		// and fires windows instead of short-circuiting as late drops.
		var payload []byte
		ev := make([]stream.Event, 512)
		for frame := 0; frame < 8; frame++ {
			for i := range ev {
				tick := int64(frame*512+i) / 4
				ev[i] = stream.Event{Time: tick, Key: uint64(i % 4), Value: float64(i%97) * 0.25}
			}
			payload = wire.AppendEventFrame(payload, ev)
		}
		br := bytes.NewReader(payload)
		fr := wire.NewReader(br)
		defer fr.Close()
		batch := make([]stream.Event, 0, 512)
		ingestBody := func() {
			br.Reset(payload)
			fr.Reset(br)
			for {
				f, err := fr.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				batch = f.AppendEvents(batch[:0])
				if _, err := s.Ingest(batch); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 10; i++ {
			ingestBody() // warm key table, spans, reorder and scatter buffers
		}
		if allocs := testing.AllocsPerRun(50, ingestBody); allocs != 0 {
			t.Fatalf("binary ingest steady state: %v allocs per body, want 0", allocs)
		}
	})

	t.Run("stream", func(t *testing.T) {
		rg := newRing(streamChunk)
		w := window.Tumbling(20)
		for i := 0; i < streamChunk; i++ {
			rg.append(stream.Result{
				W: w, Start: int64(i) * 20, End: int64(i+1) * 20,
				Key: uint64(i % 64), Value: float64(i%997) + 0.5,
			})
		}
		rows := make([]ResultRow, 0, streamChunk)
		buf := make([]byte, 0, 1<<16)
		poll := func() {
			var n int64
			rows, n = rg.readAfterInto(-1, streamChunk, rows[:0])
			_ = n
			if len(rows) != streamChunk {
				t.Fatalf("drained %d rows, want %d", len(rows), streamChunk)
			}
			buf = encodeFrameRows(buf[:0], rows)
		}
		poll() // warm
		if allocs := testing.AllocsPerRun(50, poll); allocs != 0 {
			t.Fatalf("binary stream poll steady state: %v allocs per poll, want 0", allocs)
		}
	})
}
