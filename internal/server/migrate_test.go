package server

import (
	"fmt"
	"math/rand"
	"testing"

	"factorwindows/internal/stream"
)

// stableQueries are the property tests' long-lived subscribers; their
// result streams must be identical whether or not re-plans happen
// underneath them.
var stableQueries = map[string]map[string]string{
	"SUM": {
		"q1": `SELECT k, SUM(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 4), TumblingWindow(tick, 6))`,
		"q2": `SELECT k, SUM(v) FROM s GROUP BY k, Windows(HoppingWindow(tick, 8, 4), TumblingWindow(tick, 12))`,
	},
	"MIN": {
		"q1": `SELECT k, MIN(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 4), TumblingWindow(tick, 6))`,
		"q2": `SELECT k, MIN(v) FROM s GROUP BY k, Windows(HoppingWindow(tick, 12, 6))`,
	},
	"STDEV": {
		"q1": `SELECT k, STDEV(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 6), TumblingWindow(tick, 10))`,
		"q2": `SELECT k, STDEV(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 4))`,
	},
}

// auxQueries churn the plan mid-stream; their own results are not
// compared (they are new windows, gated at their registration horizon),
// but registering and unregistering them restructures the shared plan
// under the stable queries.
var auxQueries = map[string][]string{
	"SUM": {
		`SELECT k, SUM(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 8))`,
		`SELECT k, SUM(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 24), HoppingWindow(tick, 6, 2))`,
		`SELECT k, SUM(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 2))`,
	},
	"MIN": {
		`SELECT k, MIN(v) FROM s GROUP BY k, Windows(HoppingWindow(tick, 8, 2))`,
		`SELECT k, MIN(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 18))`,
	},
	"STDEV": {
		`SELECT k, STDEV(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 2))`,
		`SELECT k, STDEV(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 30))`,
	},
}

// TestReplanExactnessProperty is the PR's acceptance property: a run
// with re-plans injected at random epochs — query registrations,
// unregistrations and cost-model re-optimizations (the same code path
// the adaptive trigger takes) — produces identical per-query results to
// an uninterrupted reference run, at shard counts 1, 4 and 7. No window
// instance open across a re-plan is skipped or delivered partially.
func TestReplanExactnessProperty(t *testing.T) {
	const flushTick = 1 << 20
	for fname, queries := range stableQueries {
		for _, shards := range []int{1, 4, 7} {
			for trial := 0; trial < 3; trial++ {
				t.Run(fmt.Sprintf("%s/shards=%d/trial=%d", fname, shards, trial), func(t *testing.T) {
					r := rand.New(rand.NewSource(int64(31*shards + trial)))
					events := genEvents(2500, 16, int64(trial+7))
					events = append(events, stream.Event{Time: flushTick})
					// Both runs ingest the exact same batches: with a finite
					// reorder bound, batch boundaries decide which duplicate
					// timestamps are judged late, and that must not differ
					// between the runs being compared.
					var cuts []int
					for i := 0; i < len(events); {
						i = min(i+1+r.Intn(200), len(events))
						cuts = append(cuts, i)
					}

					run := func(churn bool) map[string][]row {
						cr := rand.New(rand.NewSource(int64(1000*shards + trial)))
						s := New(Config{Shards: shards, Factors: true, ResultBuffer: 1 << 16})
						defer s.Close()
						for id, sql := range queries {
							if _, err := s.Register(id, sql); err != nil {
								t.Fatal(err)
							}
						}
						auxLive := false
						i := 0
						for _, j := range cuts {
							if _, err := s.Ingest(events[i:j]); err != nil {
								t.Fatal(err)
							}
							i = j
							if !churn || i >= len(events) {
								continue
							}
							switch cr.Intn(4) {
							case 0: // register an auxiliary query
								if !auxLive {
									aux := auxQueries[fname][cr.Intn(len(auxQueries[fname]))]
									if _, err := s.Register("aux", aux); err != nil {
										t.Fatal(err)
									}
									auxLive = true
								}
							case 1: // unregister it again
								if auxLive {
									if err := s.Unregister("aux"); err != nil {
										t.Fatal(err)
									}
									auxLive = false
								}
							case 2: // cost-model re-optimization (adaptive trigger path)
								if err := s.Replan(int64(1 + cr.Intn(16))); err != nil {
									t.Fatal(err)
								}
							}
						}
						out := make(map[string][]row, len(queries))
						for id := range queries {
							out[id] = serverRows(t, s, id)
						}
						if churn && s.StatsNow().Replans.Manual == 0 && s.StatsNow().Replans.Register == 0 {
							t.Fatal("churn run performed no re-plans; property is vacuous")
						}
						return out
					}

					want := run(false)
					got := run(true)
					for id := range queries {
						if len(want[id]) == 0 {
							t.Fatalf("query %s: empty reference", id)
						}
						if !equalRows(got[id], want[id]) {
							t.Fatalf("query %s: %d rows across re-plans, want %d (results diverged)",
								id, len(got[id]), len(want[id]))
						}
					}
				})
			}
		}
	}
}

// TestAdaptiveTriggerExactness is the acceptance demo for the adaptive
// trigger: a workload whose key cardinality collapses mid-stream (same
// total event rate concentrated on one key) raises the per-key rate η,
// flips the cost model's optimum for {W(6), W(10)} from raw reads to a
// shared factor window, and the server re-plans itself — visibly in
// /stats — while every delivered result stays exact.
func TestAdaptiveTriggerExactness(t *testing.T) {
	const sql = `SELECT k, SUM(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 6), TumblingWindow(tick, 10))`
	s := New(Config{
		Shards: 2, Factors: true,
		Adaptive: true, AdaptiveEpoch: 64, AdaptiveOverpay: 1.01,
	})
	defer s.Close()
	if _, err := s.Register("q", sql); err != nil {
		t.Fatal(err)
	}

	var events []stream.Event
	r := rand.New(rand.NewSource(3))
	// Phase 1: 8 events/tick spread over 8 keys — per-key η = 1.
	for tick := int64(0); tick < 200; tick++ {
		for k := 0; k < 8; k++ {
			events = append(events, stream.Event{Time: tick, Key: uint64(k), Value: float64(r.Intn(10))})
		}
	}
	// Phase 2: the same 8 events/tick, all on one hot key — per-key η = 8.
	for tick := int64(200); tick < 400; tick++ {
		for k := 0; k < 8; k++ {
			events = append(events, stream.Event{Time: tick, Key: 0, Value: float64(r.Intn(10))})
		}
	}
	const flushTick = 1 << 20
	events = append(events, stream.Event{Time: flushTick})

	for i := 0; i < len(events); i += 256 {
		if _, err := s.Ingest(events[i:min(i+256, len(events))]); err != nil {
			t.Fatal(err)
		}
	}

	st := s.StatsNow()
	if st.Replans.Adaptive == 0 {
		t.Fatalf("cardinality shift did not trigger an adaptive re-plan: %+v", st)
	}
	if st.Migrated == 0 {
		t.Fatal("adaptive re-plan migrated no state")
	}
	want := naiveReference(t, sql, events, func(r row) bool { return r.end <= flushTick })
	got := serverRows(t, s, "q")
	if !equalRows(got, want) {
		t.Fatalf("adaptive re-plan changed results: %d rows, want %d", len(got), len(want))
	}
}

// TestCheckpointAcrossMigration pins checkpoint fidelity for migrated
// state at the serving layer: a checkpoint taken while straddling
// instances from a re-plan are still open restores into a server whose
// remaining output matches the unsnapshotted continuation exactly.
func TestCheckpointAcrossMigration(t *testing.T) {
	queries := stableQueries["SUM"]
	events := genEvents(1200, 8, 11)
	const flushTick = 1 << 20
	tail := append([]stream.Event(nil), events[600:]...)
	tail = append(tail, stream.Event{Time: flushTick})

	build := func() *Server {
		s := New(Config{Shards: 3, Factors: true, ResultBuffer: 1 << 16})
		for id, sql := range queries {
			if _, err := s.Register(id, sql); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	s := build()
	defer s.Close()
	if _, err := s.Ingest(events[:600]); err != nil {
		t.Fatal(err)
	}
	// Re-plan so the pipeline holds imported straddlers (frozen spans),
	// then checkpoint mid-straddle.
	if err := s.Replan(4); err != nil {
		t.Fatal(err)
	}
	if st := s.StatsNow(); st.Migrated == 0 {
		t.Fatal("re-plan migrated nothing; checkpoint would not cover frozen state")
	}
	blob, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	marks := make(map[string]int64, len(queries))
	for id := range queries {
		rows, _, err := s.Results(id, -1, 0)
		if err != nil {
			t.Fatal(err)
		}
		marks[id] = -1
		if len(rows) > 0 {
			marks[id] = rows[len(rows)-1].Seq
		}
	}

	s2 := New(Config{Shards: 3, Factors: true, ResultBuffer: 1 << 16})
	defer s2.Close()
	if err := s2.RestoreCheckpoint(blob); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(tail); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Ingest(tail); err != nil {
		t.Fatal(err)
	}
	for id := range queries {
		contRows, _, err := s.Results(id, marks[id], 0)
		if err != nil {
			t.Fatal(err)
		}
		cont := make([]row, len(contRows))
		for i, r := range contRows {
			cont[i] = fromResultRow(r)
		}
		sortRows(cont)
		restored := serverRows(t, s2, id)
		if len(cont) == 0 {
			t.Fatalf("query %s: no post-checkpoint rows; comparison is vacuous", id)
		}
		if !equalRows(restored, cont) {
			t.Fatalf("query %s: restored run delivered %d rows, continuation %d (diverged)",
				id, len(restored), len(cont))
		}
	}
}
