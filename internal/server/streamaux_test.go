package server

import (
	"bytes"
	"fmt"
	"testing"

	"factorwindows/internal/wire"
)

// TestCtrlAuxFlagsRoundTrip pins the stream listener's control-frame
// aux vocabulary: the three typed flags occupy distinct bits, survive
// an encode/decode round trip in every combination, and decode back
// through Frame.Seq exactly. The bit positions are wire protocol —
// binary clients branch on them without parsing the JSON payload — so
// a renumbering is a breaking change this test makes loud.
func TestCtrlAuxFlagsRoundTrip(t *testing.T) {
	if ctrlAuxDurable != 1<<0 || ctrlAuxGap != 1<<1 || ctrlAuxShed != 1<<2 {
		t.Fatalf("aux flag bits moved: durable=%#x gap=%#x shed=%#x",
			ctrlAuxDurable, ctrlAuxGap, ctrlAuxShed)
	}
	flags := []struct {
		name string
		bit  int64
	}{
		{"durable", ctrlAuxDurable},
		{"gap", ctrlAuxGap},
		{"shed", ctrlAuxShed},
	}
	payload := []byte(`{"stream":7,"ok":true}`)
	// Every subset of the three flags, including none and all together:
	// flags are independent signals and must compose without clobbering
	// each other or the payload.
	for mask := int64(0); mask < 1<<3; mask++ {
		var aux int64
		name := "none"
		for _, f := range flags {
			if mask&f.bit != 0 {
				aux |= f.bit
				if name == "none" {
					name = f.name
				} else {
					name += "+" + f.name
				}
			}
		}
		t.Run(fmt.Sprintf("mask=%#x(%s)", mask, name), func(t *testing.T) {
			buf := wire.AppendControlFrameAux(nil, 7, aux, payload)
			f, rest, err := wire.Decode(buf)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d trailing bytes", len(rest))
			}
			if f.Kind != wire.KindControl || f.StreamID != 7 {
				t.Fatalf("frame = kind %d stream %d", f.Kind, f.StreamID)
			}
			if f.Seq != aux {
				t.Fatalf("aux word = %#x, want %#x", f.Seq, aux)
			}
			for _, fl := range flags {
				if got, want := f.Seq&fl.bit != 0, mask&fl.bit != 0; got != want {
					t.Errorf("%s flag = %t, want %t", fl.name, got, want)
				}
			}
			if !bytes.Equal(f.Control(), payload) {
				t.Fatalf("payload corrupted: %q", f.Control())
			}
		})
	}
}
