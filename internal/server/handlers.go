// HTTP handlers over the Server; see Handler for the route table.

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"factorwindows/internal/admit"
	"factorwindows/internal/stream"
	"factorwindows/internal/streamio"
	"factorwindows/internal/wire"
)

// ingestChunk is how many events every ingest codec groups into one
// engine batch. One shared granularity matters beyond tuning: the
// watermark advances per engine batch, and together with the runner's
// ordered drain (parallel.SetOrderedDrain, one shard-ordered flush per
// batch) the batch cadence fully decides how result rows land in the
// rings — so it must not depend on which Content-Type carried the
// events (the cross-codec equivalence test pins this). Chunks also
// release the ingest lock between each other so concurrent clients
// interleave.
const ingestChunk = 8192

// ingestBatchPool recycles the per-request event staging batch (the
// scanner's line buffer comes from streamio's shared pool). The
// pipeline copies events out synchronously (Ingest returns only after
// the batch is staged into the reorder buffer / shard scatters), so
// returning the buffers after the handler finishes is safe.
var ingestBatchPool = sync.Pool{New: func() any {
	s := make([]stream.Event, 0, ingestChunk)
	return &s
}}

// Handler returns the server's HTTP API:
//
//	POST   /queries              register a query (JSON {"id","query"} or raw ASAQL text)
//	GET    /queries              list live queries
//	GET    /queries/{id}         one query's state
//	DELETE /queries/{id}         unregister
//	GET    /queries/{id}/results cursor read: ?after=<seq>&limit=<n>
//	GET    /queries/{id}/stream  long-poll result stream: ?after=<seq>; NDJSON,
//	                             or binary frames via Accept: application/x-fw-frame
//	POST   /ingest               events by Content-Type: JSON array, NDJSON
//	                             stream, CSV, or binary frames (application/x-fw-frame)
//	POST   /replan               re-optimize in place (?eta=<rate> re-prices the cost model)
//	GET    /stats                server-wide stats
//	GET    /checkpoint           binary state snapshot
//	POST   /checkpoint           durable servers: write a WAL-offset-stamped snapshot
//	                             asynchronously and truncate the covered log prefix
//	POST   /restore              replace state from a snapshot
//	POST   /topology             distributed servers: mutate the worker topology
//	                             ({"op":"add-worker"|"move"|"drain","addr",...,"shard"})
//	GET    /healthz              liveness: 200 unless the server is closed
//	GET    /readyz               readiness: 503 + Retry-After while degraded or closed
//
// Overloaded ingest sheds with 429 + Retry-After (see Config's
// admission budgets); a fail-stopped durable log degrades ingest to
// 503 while reads keep serving. Handler panics are recovered into 500s
// and counted in /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.handleRegister)
	mux.HandleFunc("GET /queries", s.handleListQueries)
	mux.HandleFunc("GET /queries/{id}", s.handleGetQuery)
	mux.HandleFunc("DELETE /queries/{id}", s.handleUnregister)
	mux.HandleFunc("GET /queries/{id}/results", s.handleResults)
	mux.HandleFunc("GET /queries/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /replan", s.handleReplan)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /checkpoint", s.handleCheckpoint)
	mux.HandleFunc("POST /checkpoint", s.handleSnapshot)
	mux.HandleFunc("POST /restore", s.handleRestore)
	mux.HandleFunc("POST /topology", s.handleTopology)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s.recoverPanics(mux)
}

// recoverPanics converts a handler panic into a 500 JSON error instead
// of tearing down the connection, and counts it in /stats so operators
// see a panic rate. http.ErrAbortHandler re-panics: it is the
// sanctioned way to abort a response mid-body and must keep working.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.panics.Add(1)
			writeJSON(w, http.StatusInternalServerError, map[string]string{
				"error": fmt.Sprintf("server: internal error: %v", v),
			})
		}()
		next.ServeHTTP(w, r)
	})
}

// httpError maps server errors onto statuses: registry misses are 404,
// conflicts 409, body limits 413, admission sheds 429 + Retry-After,
// degraded durable log or closure 503 (degraded also hints
// Retry-After), anything else (parse/validation) 400.
func (s *Server) httpError(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
			"error": fmt.Sprintf("server: request body exceeds the %d-byte limit", maxErr.Limit),
		})
		return
	}
	if shed := (*admit.ShedError)(nil); errors.As(err, &shed) {
		w.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
		return
	}
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		code = http.StatusConflict
	case errors.Is(err, ErrDegraded):
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, admit.ErrOverloaded):
		// Sheds normally arrive as *ShedError above; the bare sentinel
		// still maps to 429 with the configured hint.
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrEngine):
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// retryAfterSeconds renders a backoff hint in the whole-second form the
// Retry-After header requires, rounding up and never below 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// registerRequest is the JSON body of POST /queries; a non-JSON body is
// treated as the raw query text with the id taken from ?id=.
type registerRequest struct {
	ID    string `json:"id"`
	Query string `json:"query"`
}

// maxRegisterBody caps POST /queries bodies; a query over a mebibyte
// is a client bug, not a workload. Oversized bodies get a 413 naming
// the limit instead of being silently truncated into a parse error.
const maxRegisterBody = 1 << 20

// maxRestoreBody caps POST /restore snapshot uploads the same way.
const maxRestoreBody = 64 << 20

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRegisterBody+1))
	if err != nil {
		s.httpError(w, err)
		return
	}
	if len(body) > maxRegisterBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
			"error": fmt.Sprintf("server: register body exceeds the %d-byte limit", maxRegisterBody),
		})
		return
	}
	req := registerRequest{ID: r.URL.Query().Get("id")}
	mt, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mt == "application/json" {
		if err := json.Unmarshal(body, &req); err != nil {
			s.httpError(w, fmt.Errorf("server: request body: %w", err))
			return
		}
	} else {
		req.Query = string(body)
	}
	qi, err := s.Register(req.ID, req.Query)
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, qi)
}

func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"queries": s.Queries()})
}

func (s *Server) handleGetQuery(w http.ResponseWriter, r *http.Request) {
	qi, err := s.Query(r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, qi)
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if err := s.Unregister(r.PathValue("id")); err != nil {
		s.httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// cursor parses ?after= (default -1: from the beginning of the buffer).
func cursor(r *http.Request) (int64, error) {
	raw := r.URL.Query().Get("after")
	if raw == "" {
		return -1, nil
	}
	return strconv.ParseInt(raw, 10, 64)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	after, err := cursor(r)
	if err != nil {
		s.httpError(w, fmt.Errorf("server: bad after cursor: %w", err))
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		if limit, err = strconv.Atoi(raw); err != nil {
			s.httpError(w, fmt.Errorf("server: bad limit: %w", err))
			return
		}
	}
	rows, missed, err := s.Results(r.PathValue("id"), after, limit)
	if err != nil {
		s.httpError(w, err)
		return
	}
	next := after
	if len(rows) > 0 {
		next = rows[len(rows)-1].Seq
	}
	// Hand-rolled for the same reason as the stream path: encoding/json
	// rejects NaN (an under-filled TOPK window), aborting the body after
	// the 200 header. Byte-compatible with the json.Encoder output it
	// replaces; NaN renders as null.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	bufp := streamio.GetEncodeBuf()
	defer streamio.PutEncodeBuf(bufp)
	buf := append((*bufp)[:0], `{"missed":`...)
	buf = strconv.AppendInt(buf, missed, 10)
	buf = append(buf, `,"next":`...)
	buf = strconv.AppendInt(buf, next, 10)
	buf = append(buf, `,"results":`...)
	if rows == nil {
		buf = append(buf, "null"...)
	} else {
		buf = append(buf, '[')
		for i := range rows {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendRowJSON(buf, &rows[i])
		}
		buf = append(buf, ']')
	}
	buf = append(buf, '}', '\n')
	*bufp = buf
	w.Write(buf)
}

// streamChunk is how many buffered rows one stream poll drains.
const streamChunk = 1024

// streamRowPool recycles the per-connection row staging buffer of
// handleStream.
var streamRowPool = sync.Pool{New: func() any {
	s := make([]ResultRow, 0, streamChunk)
	return &s
}}

// appendRowNDJSON appends one stream row as a JSON object plus newline,
// byte-compatible with the json.Encoder output it replaces (field order
// follows the ResultRow struct tags); the fields shared with the batch
// writers render through streamio's common encoder.
func appendRowNDJSON(dst []byte, row *ResultRow) []byte {
	dst = appendRowJSON(dst, row)
	return append(dst, '\n')
}

// appendRowJSON appends one result row as a JSON object (no newline);
// shared by the stream and cursor-read handlers.
func appendRowJSON(dst []byte, row *ResultRow) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendInt(dst, row.Seq, 10)
	dst = append(dst, ',')
	dst = streamio.AppendResultFields(dst, row.Range, row.Slide, row.Start, row.End, row.Key, row.Value)
	return append(dst, '}')
}

// acceptsFrames reports whether the request's Accept header asks for
// the binary frame format. Parsing is per media type, like the ingest
// dispatch — substring matching is what satellite types exploit.
func acceptsFrames(r *http.Request) bool {
	for part := range strings.SplitSeq(r.Header.Get("Accept"), ",") {
		if mt, _, err := mime.ParseMediaType(strings.TrimSpace(part)); err == nil && mt == ContentTypeFrame {
			return true
		}
	}
	return false
}

// encodeFrameRows encodes one drained ring run as a single binary
// result frame. Ring sequence numbers are assigned consecutively and
// readAfterInto returns a contiguous range, so the frame carries only
// rows[0].Seq and the per-row sequence column stays off the wire.
func encodeFrameRows(dst []byte, rows []ResultRow) []byte {
	enc := wire.BeginResultFrame(dst, 0, rows[0].Seq, len(rows))
	for i := range rows {
		enc.SetRow(i, rows[i].Range, rows[i].Slide, rows[i].Start, rows[i].End, rows[i].Key, rows[i].Value)
	}
	return enc.Bytes()
}

// handleStream writes results as NDJSON — or, when the Accept header
// names the frame media type, as binary columnar frames (one frame per
// drained chunk) — blocking for new rows until the client disconnects,
// the query is unregistered, or the server closes. The wire loop is
// allocation-free per poll either way: rows drain into a pooled staging
// buffer, the whole chunk encodes into a pooled byte buffer, and one
// Write hands it to the response.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	after, err := cursor(r)
	if err != nil {
		s.httpError(w, fmt.Errorf("server: bad after cursor: %w", err))
		return
	}
	rg, err := s.ringOf(r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	binary := acceptsFrames(r)
	if binary {
		w.Header().Set("Content-Type", ContentTypeFrame)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rowsp := streamRowPool.Get().(*[]ResultRow)
	defer func() { *rowsp = (*rowsp)[:0]; streamRowPool.Put(rowsp) }()
	bufp := streamio.GetEncodeBuf()
	defer streamio.PutEncodeBuf(bufp)
	for {
		wake := rg.waitCh() // fetch before reading: no missed wakeups
		rows, _ := rg.readAfterInto(after, streamChunk, (*rowsp)[:0])
		*rowsp = rows
		if len(rows) > 0 {
			buf := (*bufp)[:0]
			if binary {
				buf = encodeFrameRows(buf, rows)
			} else {
				for i := range rows {
					buf = appendRowNDJSON(buf, &rows[i])
				}
			}
			*bufp = buf
			if _, err := w.Write(buf); err != nil {
				return
			}
			after = rows[len(rows)-1].Seq
			rc.Flush()
			continue
		}
		if rg.isClosed() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}

// jsonEvent mirrors streamio's JSONL wire form.
type jsonEvent struct {
	Time  int64   `json:"time"`
	Key   uint64  `json:"key"`
	Value float64 `json:"value"`
}

// ContentTypeFrame is the media type of the binary columnar frame
// format (internal/wire): POST /ingest accepts it as a request body,
// and GET /queries/{id}/stream serves it when the client's Accept
// header asks for it.
const ContentTypeFrame = "application/x-fw-frame"

// ingestMediaTypes maps each supported Content-Type onto its decode
// path. Dispatch is on the exact parsed media type — substring sniffing
// admitted garbage like "application/njsonx" as NDJSON.
var ingestMediaTypes = map[string]string{
	"application/json":     "json",
	"application/x-ndjson": "ndjson",
	"application/ndjson":   "ndjson",
	"text/csv":             "csv",
	"application/csv":      "csv",
	ContentTypeFrame:       "frame",
}

// supportedIngestTypes lists the accepted media types for the 415 body,
// stable order.
var supportedIngestTypes = []string{
	"application/json", "application/x-ndjson", "application/ndjson",
	"text/csv", "application/csv", ContentTypeFrame,
}

// ingestDefaultCharge is the admission charge for an ingest request
// that declares no Content-Length (chunked transfer): without a size
// up front, charge a conservative 1 MiB so unbounded chunked floods
// still meet the budgets.
const ingestDefaultCharge = 1 << 20

// ingestCharge converts a request's Content-Length into the byte
// charge admission holds for the request's lifetime.
func ingestCharge(contentLength int64) int64 {
	if contentLength < 0 {
		return ingestDefaultCharge
	}
	return contentLength // Acquire rounds 0 up to 1
}

// sourceOf reduces a RemoteAddr to the per-source admission key: the
// host without the ephemeral port, so one client's connections share a
// budget.
func sourceOf(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.admit != nil {
		g, err := s.admit.Acquire(sourceOf(r.RemoteAddr), ingestCharge(r.ContentLength))
		if err != nil {
			s.httpError(w, err)
			return
		}
		defer g.Release()
	}
	codec := "json" // historical default: a bare POST carries a JSON array
	if ct := r.Header.Get("Content-Type"); strings.TrimSpace(ct) != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil {
			writeJSON(w, http.StatusUnsupportedMediaType, map[string]any{
				"error":     fmt.Sprintf("server: malformed Content-Type %q: %v", ct, err),
				"supported": supportedIngestTypes,
			})
			return
		}
		var ok bool
		if codec, ok = ingestMediaTypes[mt]; !ok {
			writeJSON(w, http.StatusUnsupportedMediaType, map[string]any{
				"error":     fmt.Sprintf("server: unsupported Content-Type %q", mt),
				"supported": supportedIngestTypes,
			})
			return
		}
	}
	switch codec {
	case "ndjson":
		s.ingestNDJSON(w, r)
	case "csv":
		// The buffering codecs (CSV, JSON array) must read the whole body
		// before the first event reaches the pipeline, so they get a hard
		// body cap; the streaming codecs (NDJSON, frames) hold at most one
		// chunk and are bounded by admission instead.
		events, err := streamio.ReadCSV(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			s.httpError(w, err)
			return
		}
		s.ingestBatch(w, events)
	case "frame":
		s.ingestFrames(w, r)
	default: // JSON array
		var evs []jsonEvent
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&evs); err != nil {
			s.httpError(w, fmt.Errorf("server: request body: %w", err))
			return
		}
		events := make([]stream.Event, len(evs))
		for i, e := range evs {
			events[i] = stream.Event{Time: e.Time, Key: e.Key, Value: e.Value}
		}
		s.ingestBatch(w, events)
	}
}

// frameBatchPool recycles the binary ingest path's event staging batch.
// Frames carry whole client-side batches (up to wire.MaxFrameRows), so
// the slices grow larger than the NDJSON staging; oversized ones are
// dropped instead of pooled.
var frameBatchPool = sync.Pool{New: func() any {
	s := make([]stream.Event, 0, 4096)
	return &s
}}

// frameBatchRetain bounds the pooled staging capacity, in events.
const frameBatchRetain = 1 << 16

// ingestFrames consumes a stream of binary columnar event frames: the
// frames' column vectors scatter straight into the pooled staging slice
// (no per-event decode work or structs on the wire), which hands the
// pipeline one batch per ingestChunk events regardless of how the
// client framed them, so frame boundaries never change the watermark
// cadence. Chunk flushes release the ingest lock between each other so
// concurrent clients interleave, like the NDJSON path. A client that
// frames in ingestChunk-row frames hits the exact-alignment fast path:
// every flush drains the staging slice completely and no rows carry
// over between frames.
func (s *Server) ingestFrames(w http.ResponseWriter, r *http.Request) {
	fr := wire.NewReader(r.Body)
	defer fr.Close()
	batchp := frameBatchPool.Get().(*[]stream.Event)
	defer func() {
		if cap(*batchp) <= frameBatchRetain {
			*batchp = (*batchp)[:0]
			frameBatchPool.Put(batchp)
		}
	}()
	batch := (*batchp)[:0]
	defer func() { *batchp = batch[:0] }()
	var (
		total   IngestStatus
		frames  int
		flushes int
	)
	flush := func(chunk []stream.Event) error {
		st, err := s.Ingest(chunk)
		if err != nil {
			return err
		}
		total.Accepted += st.Accepted
		total.Dropped += st.Dropped
		total.Late, total.Buffered, total.Epoch = st.Late, st.Buffered, st.Epoch
		// The response's durable bit covers the whole request: every
		// chunk's record must have been fsync-acked.
		if flushes == 0 {
			total.Durable = st.Durable
		} else {
			total.Durable = total.Durable && st.Durable
		}
		flushes++
		return nil
	}
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		frames++
		if err != nil {
			s.httpError(w, fmt.Errorf("server: frame %d: %w", frames, err))
			return
		}
		if f.Kind != wire.KindEvents {
			s.httpError(w, fmt.Errorf("server: frame %d: kind %d is not an event frame", frames, f.Kind))
			return
		}
		batch = f.AppendEvents(batch)
		for len(batch) >= ingestChunk {
			if err := flush(batch[:ingestChunk]); err != nil {
				s.httpError(w, err)
				return
			}
			batch = append(batch[:0], batch[ingestChunk:]...)
		}
	}
	if len(batch) > 0 {
		if err := flush(batch); err != nil {
			s.httpError(w, err)
			return
		}
		batch = batch[:0]
	}
	writeJSON(w, http.StatusOK, total)
}

func (s *Server) ingestBatch(w http.ResponseWriter, events []stream.Event) {
	if len(events) == 0 {
		st, err := s.Ingest(events)
		if err != nil {
			s.httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
		return
	}
	var total IngestStatus
	for off := 0; off < len(events); off += ingestChunk {
		end := min(off+ingestChunk, len(events))
		st, err := s.Ingest(events[off:end])
		if err != nil {
			s.httpError(w, err)
			return
		}
		total.Accepted += st.Accepted
		total.Dropped += st.Dropped
		total.Late, total.Buffered, total.Epoch = st.Late, st.Buffered, st.Epoch
		if off == 0 {
			total.Durable = st.Durable
		} else {
			total.Durable = total.Durable && st.Durable
		}
	}
	writeJSON(w, http.StatusOK, total)
}

// ingestNDJSON consumes an event-per-line stream incrementally, handing
// the pipeline one batch per ingestChunk lines. The staging batch and
// scanner buffer are pooled, and lines decode from the scanner's byte
// slice directly — no per-line string or per-request buffer allocation.
func (s *Server) ingestNDJSON(w http.ResponseWriter, r *http.Request) {
	sc, putScanBuf := streamio.NewLineScanner(r.Body)
	defer putScanBuf()
	batchp := ingestBatchPool.Get().(*[]stream.Event)
	defer ingestBatchPool.Put(batchp)
	batch := (*batchp)[:0]
	defer func() { *batchp = batch[:0] }()
	var (
		total   IngestStatus
		line    int
		flushes int
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		st, err := s.Ingest(batch)
		if err != nil {
			return err
		}
		total.Accepted += st.Accepted
		total.Dropped += st.Dropped
		total.Late, total.Buffered, total.Epoch = st.Late, st.Buffered, st.Epoch
		if flushes == 0 {
			total.Durable = st.Durable
		} else {
			total.Durable = total.Durable && st.Durable
		}
		flushes++
		batch = batch[:0]
		return nil
	}
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(text, &je); err != nil {
			s.httpError(w, fmt.Errorf("server: line %d: %w", line, err))
			return
		}
		batch = append(batch, stream.Event{Time: je.Time, Key: je.Key, Value: je.Value})
		if len(batch) >= ingestChunk {
			if err := flush(); err != nil {
				s.httpError(w, err)
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		s.httpError(w, err)
		return
	}
	if err := flush(); err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, total)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsNow())
}

// handleHealthz is liveness: 200 while the process can serve anything
// at all — including degraded mode, where reads still work — and 503
// only once the server is closed.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Status == "closed" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleReadyz is readiness: 503 + Retry-After whenever the server
// cannot accept mutations (degraded durable log, engine failure, or
// closed), so load balancers stop routing writes while reads keep
// draining through the still-200 /healthz backends.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if !h.Ready {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleReplan re-optimizes the live query set in place. Open window
// state migrates exactly, so the swap is invisible in the result
// streams; ?eta= re-prices the cost model at that event rate first.
func (s *Server) handleReplan(w http.ResponseWriter, r *http.Request) {
	var eta int64
	if raw := r.URL.Query().Get("eta"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 1 {
			s.httpError(w, fmt.Errorf("server: bad eta %q (want a positive integer)", raw))
			return
		}
		eta = v
	}
	if err := s.Replan(eta); err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.StatsNow())
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	data, err := s.Checkpoint()
	if err != nil {
		s.httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleSnapshot (POST /checkpoint) captures a durable snapshot now and
// writes it asynchronously; 202 with the offset it will cover. 404 on a
// non-durable server, 409 while a previous write is still in flight.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	offset, err := s.Snapshot()
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"snapshot_offset": offset})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxRestoreBody+1))
	if err != nil {
		s.httpError(w, err)
		return
	}
	if len(data) > maxRestoreBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
			"error": fmt.Sprintf("server: restore body exceeds the %d-byte limit", maxRestoreBody),
		})
		return
	}
	if err := s.RestoreCheckpoint(data); err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": s.Queries(), "stats": s.StatsNow()})
}

// topologyRequest is the JSON body of POST /topology.
type topologyRequest struct {
	Op    string `json:"op"`    // add-worker | move | drain
	Addr  string `json:"addr"`  // worker address the op targets
	Shard *int   `json:"shard"` // move only: which shard to reassign
}

// handleTopology mutates the distributed worker topology: admit or
// revive a worker, move one shard, or drain a worker entirely. Replies
// with the resulting topology so the caller sees placement, not just
// success. Single-process servers answer 409.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	var req topologyRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxRegisterBody)).Decode(&req); err != nil {
		s.httpError(w, fmt.Errorf("server: decoding topology request: %w", err))
		return
	}
	var err error
	switch req.Op {
	case "add-worker":
		err = s.AddWorker(req.Addr)
	case "move":
		if req.Shard == nil {
			s.httpError(w, errors.New(`server: topology op "move" needs a shard`))
			return
		}
		err = s.MoveShard(*req.Shard, req.Addr)
	case "drain":
		err = s.DrainWorker(req.Addr)
	default:
		s.httpError(w, fmt.Errorf("server: unknown topology op %q", req.Op))
		return
	}
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "topology": s.TopologyNow()})
}
