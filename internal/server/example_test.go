package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"

	"factorwindows/internal/server"
	"factorwindows/internal/stream"
)

// Example_quickstart exercises the README's curl quickstart end to end,
// in-process: register two queries over HTTP, ingest events, read
// results, then trigger a re-plan mid-stream (a third registration plus
// a forced re-optimization) and show that the pre-existing query keeps
// delivering the window instances that straddled the swap — the
// zero-gap re-planning contract. If the README flow rots, this example
// fails to compile or its output changes.
func Example_quickstart() {
	s := server.New(server.Config{Shards: 1, Factors: true})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, contentType, body string) string {
		resp, err := http.Post(ts.URL+path, contentType, strings.NewReader(body))
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return strings.TrimSpace(string(b))
	}
	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return strings.TrimSpace(string(b))
	}

	// 1. Register two dashboard queries (same aggregate, different windows).
	post("/queries?id=q1", "text/plain", `SELECT DeviceID, MIN(T) FROM In GROUP BY DeviceID, Windows(
		Window('20s', TumblingWindow(second, 20)),
		Window('30s', TumblingWindow(second, 30)))`)
	post("/queries?id=q2", "text/plain",
		`SELECT DeviceID, MIN(T) FROM In GROUP BY DeviceID, Windows(HoppingWindow(second, 60, 30))`)

	// 2. Ingest events (out-of-order up to the reorder bound is tolerated).
	post("/ingest", "application/json",
		`[{"time":1,"key":7,"value":21.5},{"time":2,"key":9,"value":19.0},{"time":31,"key":7,"value":18.2}]`)

	// 3. Read results: windows [0,20) and [0,30) have completed for keys 7/9.
	fmt.Println("q1 after first ingest:")
	fmt.Println(get("/queries/q1/results?after=-1"))

	// 4. Re-plan mid-stream: a third query joins and the cost model is
	// re-priced. Window [30,60) of q1 is open right now — it migrates.
	post("/queries?id=q3", "text/plain",
		`SELECT DeviceID, MIN(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(second, 10))`)
	post("/replan?eta=8", "text/plain", "")
	post("/ingest", "application/json", `[{"time":61,"key":7,"value":25.0}]`)

	// 5. The windows open across the swaps — [20,40) and the straddling
	// [30,60) — arrive complete and exact despite two plan changes.
	fmt.Println("q1 after the re-plans:")
	fmt.Println(get("/queries/q1/results?after=3"))

	// Output:
	// q1 after first ingest:
	// {"missed":0,"next":3,"results":[{"seq":0,"range":20,"slide":20,"start":0,"end":20,"key":7,"value":21.5},{"seq":1,"range":20,"slide":20,"start":0,"end":20,"key":9,"value":19},{"seq":2,"range":30,"slide":30,"start":0,"end":30,"key":7,"value":21.5},{"seq":3,"range":30,"slide":30,"start":0,"end":30,"key":9,"value":19}]}
	// q1 after the re-plans:
	// {"missed":0,"next":5,"results":[{"seq":4,"range":20,"slide":20,"start":20,"end":40,"key":7,"value":18.2},{"seq":5,"range":30,"slide":30,"start":30,"end":60,"key":7,"value":18.2}]}
}

// Example_adaptive pins the README's adaptive-mode claim: when the key
// cardinality collapses mid-stream (the same event rate concentrated on
// one hot key), the observed per-key rate η rises, the cost model's
// optimum for {W(6), W(10)} flips to a shared factor window, and the
// server re-plans itself — visible in the stats, invisible in the
// results (state migrates exactly).
func Example_adaptive() {
	s := server.New(server.Config{
		Shards: 1, Factors: true,
		Adaptive: true, AdaptiveEpoch: 64, AdaptiveOverpay: 1.01,
	})
	defer s.Close()
	if _, err := s.Register("q", `SELECT k, SUM(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 6), TumblingWindow(tick, 10))`); err != nil {
		panic(err)
	}
	ingest := func(fromTick, toTick int64, keys uint64) {
		var batch []stream.Event
		for t := fromTick; t < toTick; t++ {
			for k := uint64(0); k < 8; k++ {
				batch = append(batch, stream.Event{Time: t, Key: k % keys, Value: 1})
			}
		}
		if _, err := s.Ingest(batch); err != nil {
			panic(err)
		}
	}
	ingest(0, 200, 8) // 8 events/tick over 8 keys: per-key η = 1
	before := s.StatsNow()
	ingest(200, 400, 1) // the same rate on one hot key: per-key η = 8
	after := s.StatsNow()
	fmt.Printf("before shift: eta=%d adaptive_replans=%d\n", before.Eta, before.Replans.Adaptive)
	fmt.Printf("after shift:  eta=%d adaptive_replans=%d migrated>0=%t\n",
		after.Eta, after.Replans.Adaptive, after.Migrated > 0)

	// Output:
	// before shift: eta=1 adaptive_replans=0
	// after shift:  eta=8 adaptive_replans=1 migrated>0=true
}
