package server

import (
	"os"
	"testing"
	"time"

	"factorwindows/internal/reorder"
	"factorwindows/internal/wal"
)

// benchWALDir returns a tmpfs-backed WAL directory when the host has
// one, falling back to the test tempdir. The guarded numbers must pin
// the WAL software path (frame encode, staging, group commit, the
// write syscall) — not the block device: CI and developer disks differ
// by orders of magnitude and virtualized disks throttle mid-run, which
// would turn the regression guard into a disk lottery. Device
// throughput is an operations concern (see the README runbook), not a
// code property this benchmark can hold steady.
func benchWALDir(b *testing.B) string {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		dir, err := os.MkdirTemp("/dev/shm", "fw-wal-bench-*")
		if err == nil {
			b.Cleanup(func() { os.RemoveAll(dir) })
			return dir
		}
	}
	return b.TempDir()
}

// BenchmarkDurablePipeline measures the cost of durability on the
// ordered ingest path: the same 64k-event workload as the wire
// benchmarks pushed through s.Ingest in 8192-event batches, with the
// WAL disabled (none), appending without waiting for fsync
// (wal-interval, the recommended production setting — ticker-driven
// group fsync off the ack path), and fsyncing every group commit
// (wal-every). The acceptance bar is wal-interval within 10% ns/op of
// none; BENCH_wal.json records both so benchguard holds the line.
func BenchmarkDurablePipeline(b *testing.B) {
	const nevents = 1 << 16
	events := wireBenchEvents(nevents)
	configs := []struct {
		name string
		cfg  func(b *testing.B) Config
	}{
		{"none", func(b *testing.B) Config {
			return Config{Shards: 2, Policy: reorder.Adjust}
		}},
		{"wal-interval", func(b *testing.B) Config {
			return Config{
				Shards: 2, Policy: reorder.Adjust,
				Durable: true, WALDir: benchWALDir(b),
				Fsync: wal.FsyncInterval, FsyncInterval: 50 * time.Millisecond,
			}
		}},
		{"wal-every", func(b *testing.B) Config {
			return Config{
				Shards: 2, Policy: reorder.Adjust,
				Durable: true, WALDir: benchWALDir(b),
				Fsync: wal.FsyncEvery,
			}
		}},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			cfg := c.cfg(b)
			var s *Server
			var err error
			if cfg.Durable {
				s, err = Open(cfg)
			} else {
				s, err = New(cfg), nil
			}
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Register("q", "SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 20))"); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(nevents * 24))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for off := 0; off < nevents; off += 8192 {
					if _, err := s.Ingest(events[off : off+8192]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(nevents)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
		})
	}
}
