package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"factorwindows/internal/asaql"
	"factorwindows/internal/engine"
	"factorwindows/internal/plan"
	"factorwindows/internal/reorder"
	"factorwindows/internal/stream"
)

// row is a sequence-free, plan-free normalization of one result, used to
// compare server output against reference executions.
type row struct {
	rng, slide, start, end int64
	key                    uint64
	value                  float64
}

func fromResultRow(r ResultRow) row {
	return row{rng: r.Range, slide: r.Slide, start: r.Start, end: r.End, key: r.Key, value: r.Value}
}

func fromResult(r stream.Result) row {
	return row{rng: r.W.Range, slide: r.W.Slide, start: r.Start, end: r.End, key: r.Key, value: r.Value}
}

func sortRows(rs []row) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		switch {
		case a.rng != b.rng:
			return a.rng < b.rng
		case a.slide != b.slide:
			return a.slide < b.slide
		case a.start != b.start:
			return a.start < b.start
		default:
			return a.key < b.key
		}
	})
}

// naiveReference executes one query stand-alone on the single-core
// engine with the naive (unshared) plan and returns the rows that
// matched the predicate.
func naiveReference(t *testing.T, sql string, events []stream.Event, keep func(row) bool) []row {
	t.Helper()
	q, err := asaql.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	set, err := q.Set()
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.NewOriginal(set, q.Fn)
	if err != nil {
		t.Fatal(err)
	}
	sink := &stream.CollectingSink{}
	if _, err := engine.Run(p, events, sink); err != nil {
		t.Fatal(err)
	}
	var out []row
	for _, r := range sink.Results {
		if rw := fromResult(r); keep(rw) {
			out = append(out, rw)
		}
	}
	sortRows(out)
	return out
}

func serverRows(t *testing.T, s *Server, id string) []row {
	t.Helper()
	rows, missed, err := s.Results(id, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if missed != 0 {
		t.Fatalf("query %s: %d rows evicted; grow ResultBuffer in the test", id, missed)
	}
	out := make([]row, len(rows))
	for i, r := range rows {
		out[i] = fromResultRow(r)
	}
	sortRows(out)
	return out
}

func equalRows(a, b []row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			// TOPK yields NaN for windows tracking fewer than k values;
			// two NaN rows over the same window agree.
			av, bv := a[i], b[i]
			if math.IsNaN(av.value) && math.IsNaN(bv.value) {
				av.value, bv.value = 0, 0
			}
			if av != bv {
				return false
			}
		}
	}
	return true
}

// genEvents builds an in-order random stream with integer values, so
// SUM is exact under any merge order.
func genEvents(n, keys int, seed int64) []stream.Event {
	r := rand.New(rand.NewSource(seed))
	events := make([]stream.Event, 0, n)
	tick := int64(0)
	for i := 0; i < n; i++ {
		tick += int64(r.Intn(3))
		events = append(events, stream.Event{
			Time: tick, Key: uint64(r.Intn(5)), Value: float64(r.Intn(100)),
		})
	}
	return events
}

const (
	demoQuery1 = `SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(
		Window('8t', TumblingWindow(tick, 8)), Window('16t', TumblingWindow(tick, 16)))`
	demoQuery2 = `SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(
		HoppingWindow(tick, 12, 6), TumblingWindow(tick, 24))`
)

// TestDemoTwoQueries is the PR's acceptance demo: two ASAQL queries
// registered over one ingested stream return results identical to
// single-core engine execution of each query alone.
func TestDemoTwoQueries(t *testing.T) {
	s := New(Config{Shards: 4, Factors: true})
	defer s.Close()
	if _, err := s.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("b", demoQuery2); err != nil {
		t.Fatal(err)
	}

	events := genEvents(3000, 5, 1)
	const flushTick = 1 << 20
	events = append(events, stream.Event{Time: flushTick, Key: 0, Value: 0})
	for i := 0; i < len(events); i += 500 {
		end := min(i+500, len(events))
		if _, err := s.Ingest(events[i:end]); err != nil {
			t.Fatal(err)
		}
	}

	// Every window instance with end <= flushTick has fired; the
	// sentinel's own windows are open on both sides and excluded.
	complete := func(r row) bool { return r.end <= flushTick }
	for id, sql := range map[string]string{"a": demoQuery1, "b": demoQuery2} {
		want := naiveReference(t, sql, events, complete)
		got := serverRows(t, s, id)
		if len(want) == 0 {
			t.Fatalf("query %s: empty reference", id)
		}
		if !equalRows(got, want) {
			t.Errorf("query %s: server delivered %d rows, engine %d; outputs differ",
				id, len(got), len(want))
		}
	}

	st := s.StatsNow()
	if st.Queries != 2 || st.Ingested != int64(len(events)) || st.EngineEvents != int64(len(events)) {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEpochSemantics pins the re-planning contract: a query registered
// mid-stream sees exactly the complete instances that start at or after
// the registration horizon, while the pre-existing query's open windows
// migrate across the re-plan and lose nothing — everything delivered
// stays exact.
func TestEpochSemantics(t *testing.T) {
	s := New(Config{Shards: 3, Factors: true})
	defer s.Close()
	if _, err := s.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}

	events := genEvents(2000, 5, 7)
	cut := 1000
	if _, err := s.Ingest(events[:cut]); err != nil {
		t.Fatal(err)
	}
	// With bound 0 everything ingested so far is released; the horizon
	// seals at the last released tick, which stays admissible so a run
	// of equal timestamps can straddle the ingest batch boundary.
	boundary := events[cut-1].Time
	if got := s.StatsNow().Released; got != boundary {
		t.Fatalf("released = %d, want %d", got, boundary)
	}

	if _, err := s.Register("b", demoQuery2); err != nil {
		t.Fatal(err)
	}
	const flushTick = 1 << 20
	tail := append(append([]stream.Event(nil), events[cut:]...), stream.Event{Time: flushTick})
	if _, err := s.Ingest(tail); err != nil {
		t.Fatal(err)
	}

	full := append(append([]stream.Event(nil), events...), stream.Event{Time: flushTick})
	wantA := naiveReference(t, demoQuery1, full, func(r row) bool {
		return r.end <= flushTick // zero-gap: a's windows straddling the re-plan migrate
	})
	wantB := naiveReference(t, demoQuery2, full, func(r row) bool {
		return r.end <= flushTick && r.start >= boundary
	})
	if gotA := serverRows(t, s, "a"); !equalRows(gotA, wantA) {
		t.Errorf("query a: %d rows, want %d", len(gotA), len(wantA))
	}
	if gotB := serverRows(t, s, "b"); !equalRows(gotB, wantB) {
		t.Errorf("query b: %d rows, want %d", len(gotB), len(wantB))
	}
	if len(wantB) == 0 {
		t.Fatal("query b reference is empty; boundary too late")
	}
}

// TestReorderedIngest feeds bounded-disorder input and expects the same
// output as the sorted stream.
func TestReorderedIngest(t *testing.T) {
	s := New(Config{Shards: 2, Factors: true, ReorderBound: 16})
	defer s.Close()
	if _, err := s.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	events := genEvents(1500, 4, 11)
	// Shuffle within blocks of 8 positions: times grow at most 2 per
	// step, so displacement stays under 14 ticks — inside the bound.
	shuffled := append([]stream.Event(nil), events...)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < len(shuffled); i += 8 {
		end := min(i+8, len(shuffled))
		r.Shuffle(end-i, func(a, b int) {
			shuffled[i+a], shuffled[i+b] = shuffled[i+b], shuffled[i+a]
		})
	}
	const flushTick = 1 << 20
	shuffled = append(shuffled, stream.Event{Time: flushTick})
	for i := 0; i < len(shuffled); i += 333 {
		if _, err := s.Ingest(shuffled[i:min(i+333, len(shuffled))]); err != nil {
			t.Fatal(err)
		}
	}
	if late := s.StatsNow().Late; late != 0 {
		t.Fatalf("disorder of < 8 ticks within bound 16 must not drop events; late = %d", late)
	}
	sorted := append(append([]stream.Event(nil), events...), stream.Event{Time: flushTick})
	want := naiveReference(t, demoQuery1, sorted, func(r row) bool { return r.end <= flushTick })
	if got := serverRows(t, s, "a"); !equalRows(got, want) {
		t.Errorf("reordered ingest diverged: %d rows, want %d", len(got), len(want))
	}
}

// TestCheckpointRestore resumes a stream on a fresh server and expects
// the continuation to deliver exactly what the original would have.
func TestCheckpointRestore(t *testing.T) {
	cfg := Config{Shards: 3, Factors: true, ReorderBound: 4}
	s1 := New(cfg)
	defer s1.Close()
	for id, sql := range map[string]string{"a": demoQuery1, "b": demoQuery2} {
		if _, err := s1.Register(id, sql); err != nil {
			t.Fatal(err)
		}
	}
	events := genEvents(2400, 5, 23)
	cut := 1200
	if _, err := s1.Ingest(events[:cut]); err != nil {
		t.Fatal(err)
	}
	data, err := s1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	preA, preB := serverRows(t, s1, "a"), serverRows(t, s1, "b")

	const flushTick = 1 << 20
	tail := append(append([]stream.Event(nil), events[cut:]...), stream.Event{Time: flushTick})
	if _, err := s1.Ingest(tail); err != nil {
		t.Fatal(err)
	}

	s2 := New(cfg)
	defer s2.Close()
	if err := s2.RestoreCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	if got := len(s2.Queries()); got != 2 {
		t.Fatalf("restored %d queries", got)
	}
	if _, err := s2.Ingest(tail); err != nil {
		t.Fatal(err)
	}
	// s2's rings only hold post-restore rows; s1's hold the full run.
	for _, id := range []string{"a", "b"} {
		all := serverRows(t, s1, id)
		pre := preA
		if id == "b" {
			pre = preB
		}
		wantPost := diffRows(all, pre)
		got := serverRows(t, s2, id)
		if !equalRows(got, wantPost) {
			t.Errorf("query %s: restored continuation delivered %d rows, original %d",
				id, len(got), len(wantPost))
		}
		if len(wantPost) == 0 {
			t.Fatalf("query %s: empty continuation; test is vacuous", id)
		}
	}

	// A config mismatch must be rejected.
	s3 := New(Config{Shards: 3, Factors: false})
	defer s3.Close()
	if err := s3.RestoreCheckpoint(data); !errors.Is(err, ErrConflict) {
		t.Fatalf("factors mismatch: err = %v", err)
	}
}

// diffRows returns all minus pre (both sorted, pre a prefix-subset).
func diffRows(all, pre []row) []row {
	seen := make(map[row]int, len(pre))
	for _, r := range pre {
		seen[r]++
	}
	var out []row
	for _, r := range all {
		if seen[r] > 0 {
			seen[r]--
			continue
		}
		out = append(out, r)
	}
	return out
}

// TestEmptySetPreservesHorizon: unregistering the last query must not
// unseal the release horizon — a query registered afterwards may not
// receive partial values for windows straddling the gap.
func TestEmptySetPreservesHorizon(t *testing.T) {
	s := New(Config{Shards: 2, Factors: true})
	defer s.Close()
	const sql = `SELECT k, SUM(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 16))`
	if _, err := s.Register("a", sql); err != nil {
		t.Fatal(err)
	}
	events := make([]stream.Event, 0, 128)
	for tick := int64(0); tick < 128; tick++ {
		events = append(events, stream.Event{Time: tick, Key: 0, Value: 1})
	}
	if _, err := s.Ingest(events[:100]); err != nil { // released horizon: 100
		t.Fatal(err)
	}
	if err := s.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("b", sql); err != nil {
		t.Fatal(err)
	}
	const flushTick = 1 << 20
	tail := append(append([]stream.Event(nil), events[100:]...), stream.Event{Time: flushTick})
	if _, err := s.Ingest(tail); err != nil {
		t.Fatal(err)
	}
	rows := serverRows(t, s, "b")
	if len(rows) == 0 {
		t.Fatal("no rows delivered")
	}
	for _, r := range rows {
		if r.start < 100 {
			t.Fatalf("window [%d,%d) straddles the unregister gap; value %g would be partial",
				r.start, r.end, r.value)
		}
		if r.start < flushTick && r.value != float64(r.end-r.start) {
			t.Fatalf("window [%d,%d) delivered partial sum %g", r.start, r.end, r.value)
		}
	}
}

// TestEngineFailureContained: an engine-contract violation inside a
// shard (as corrupt restored state produces) must not crash the
// process; ingestion reports ErrEngine persistently until the registry
// changes.
func TestEngineFailureContained(t *testing.T) {
	// factors=false with a lone hopping window keeps a k>1 operator at
	// the plan root, which detects out-of-order input.
	s := New(Config{Shards: 1, Factors: false})
	defer s.Close()
	if _, err := s.Register("a", `SELECT k, SUM(v) FROM s GROUP BY k, Windows(HoppingWindow(tick, 12, 6))`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]stream.Event{{Time: 100, Key: 0, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	// Sabotage: bypass the reorder buffer, as a tampered checkpoint
	// whose restored horizon disagrees with the engine state would.
	s.pipe.runner.Process([]stream.Event{{Time: 0, Key: 0, Value: 1}})

	if _, err := s.Ingest([]stream.Event{{Time: 200, Key: 0, Value: 1}}); !errors.Is(err, ErrEngine) {
		t.Fatalf("ingest after poisoning: %v", err)
	}
	if _, err := s.Ingest([]stream.Event{{Time: 201, Key: 0, Value: 1}}); !errors.Is(err, ErrEngine) {
		t.Fatalf("failure not persistent: %v", err)
	}
	if st := s.StatsNow(); st.Error == "" {
		t.Fatal("stats hide the failure")
	}
	if _, err := s.Checkpoint(); !errors.Is(err, ErrEngine) {
		t.Fatal("checkpoint of a failed pipeline must error")
	}
	// A registry change rebuilds the pipeline and clears the failure.
	if _, err := s.Register("b", `SELECT k, SUM(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 6))`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]stream.Event{{Time: 205, Key: 0, Value: 1}, {Time: 206, Key: 0, Value: 1}}); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
	if _, err := s.Ingest([]stream.Event{{Time: 1 << 20, Key: 0, Value: 0}}); err != nil {
		t.Fatal(err)
	}
	if st := s.StatsNow(); st.Error != "" {
		t.Fatalf("stale failure in stats: %s", st.Error)
	}
	// The failure horizon (released 201 when the pipeline died) carries
	// into the recovered epoch: windows straddling it — like hopping
	// [198,210), whose pre-failure ticks are gone — are suppressed, not
	// delivered with partial values.
	for _, id := range []string{"a", "b"} {
		for _, r := range serverRows(t, s, id) {
			if r.start < 201 {
				t.Errorf("query %s delivered straddling window [%d,%d) = %g after recovery",
					id, r.start, r.end, r.value)
			}
		}
	}
	if rows := serverRows(t, s, "a"); len(rows) == 0 {
		t.Fatal("no post-recovery rows; suppression check is vacuous")
	}
}

// TestTamperedCheckpointRejected: a checkpoint whose engine blob is
// garbage must not be installed silently — the restore errors, and the
// server stays serviceable on fresh state.
func TestTamperedCheckpointRejected(t *testing.T) {
	cfg := Config{Shards: 2, Factors: true}
	s1 := New(cfg)
	defer s1.Close()
	if _, err := s1.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Ingest(genEvents(500, 3, 31)); err != nil {
		t.Fatal(err)
	}
	data, err := s1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var cp checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cp); err != nil {
		t.Fatal(err)
	}
	cp.Engine = []byte("garbage")
	var tampered bytes.Buffer
	if err := gob.NewEncoder(&tampered).Encode(cp); err != nil {
		t.Fatal(err)
	}

	s2 := New(cfg)
	defer s2.Close()
	if err := s2.RestoreCheckpoint(tampered.Bytes()); err == nil {
		t.Fatal("tampered checkpoint accepted")
	}
	// The fallback re-plan keeps the restored queries live on fresh state.
	if got := len(s2.Queries()); got != 1 {
		t.Fatalf("queries after failed restore: %d", got)
	}
	if _, err := s2.Ingest([]stream.Event{{Time: 1, Key: 0, Value: 1}}); err != nil {
		t.Fatalf("server unserviceable after failed restore: %v", err)
	}
	// ...but it must keep the checkpoint's sealed horizon, or windows
	// straddling the restore point would be delivered partially (the
	// t=1 event above is below the horizon and judged late).
	if rel := s2.StatsNow().Released; rel != cp.Reorder.Released {
		t.Fatalf("fallback lost the horizon: released=%d, checkpoint had %d", rel, cp.Reorder.Released)
	}

	// A tampered reorder state (pending event below the sealed horizon)
	// is rejected as well.
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cp); err != nil {
		t.Fatal(err)
	}
	cp.Reorder.Pending = append(cp.Reorder.Pending, stream.Event{Time: cp.Reorder.Released - 10})
	tampered.Reset()
	if err := gob.NewEncoder(&tampered).Encode(cp); err != nil {
		t.Fatal(err)
	}
	s3 := New(cfg)
	defer s3.Close()
	if err := s3.RestoreCheckpoint(tampered.Bytes()); err == nil {
		t.Fatal("tampered reorder state accepted")
	}

	// A query that Register would reject (WHERE clause) cannot be
	// smuggled in through a checkpoint.
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cp); err != nil {
		t.Fatal(err)
	}
	cp.Queries[0].SQL = `SELECT k, SUM(v) FROM s WHERE v > 3 GROUP BY k, Windows(TumblingWindow(tick, 8))`
	tampered.Reset()
	if err := gob.NewEncoder(&tampered).Encode(cp); err != nil {
		t.Fatal(err)
	}
	s4 := New(cfg)
	defer s4.Close()
	if err := s4.RestoreCheckpoint(tampered.Bytes()); err == nil {
		t.Fatal("WHERE-laden query smuggled through restore")
	}

	// Disorder settings are part of the snapshot's identity: restoring
	// onto a server with a different bound is a conflict, not a silent
	// flag override.
	s5 := New(Config{Shards: 2, Factors: true, ReorderBound: 50})
	defer s5.Close()
	if err := s5.RestoreCheckpoint(data); !errors.Is(err, ErrConflict) {
		t.Fatalf("reorder-bound mismatch: err = %v", err)
	}
}

func TestRegistrationErrors(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	if _, err := s.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"parse error":   "SELECT FROM nope",
		"where clause":  "SELECT k, SUM(v) FROM s WHERE v > 3 GROUP BY k, Windows(TumblingWindow(tick, 4))",
		"multi agg":     "SELECT k, SUM(v), MIN(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 4))",
		"holistic":      "SELECT k, MEDIAN(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 4))",
		"mixed fn":      "SELECT k, MIN(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 4))",
		"duplicate id ": demoQuery2,
	}
	for name, sql := range cases {
		id := ""
		if name == "duplicate id " {
			id = "a"
		}
		if _, err := s.Register(id, sql); err == nil {
			t.Errorf("%s: registration must fail", name)
		}
	}
	if err := s.Unregister("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unregister ghost: %v", err)
	}
	if _, _, err := s.Results("ghost", -1, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("results ghost: %v", err)
	}

	// After the only query leaves, the aggregate function unpins and
	// ingested events are dropped, not executed.
	if err := s.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	st, err := s.Ingest([]stream.Event{{Time: 1, Key: 1, Value: 1}})
	if err != nil || st.Dropped != 1 || st.Accepted != 0 {
		t.Fatalf("idle ingest: %+v, %v", st, err)
	}
	if _, err := s.Register("m", "SELECT k, MIN(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 4))"); err != nil {
		t.Fatalf("fn must unpin when the set empties: %v", err)
	}

	if _, err := s.Ingest([]stream.Event{{Time: -1}}); err == nil {
		t.Fatal("negative time must be rejected")
	}
}

func TestClose(t *testing.T) {
	s := New(Config{Shards: 2})
	if _, err := s.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Ingest([]stream.Event{{Time: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: %v", err)
	}
	if _, err := s.Register("b", demoQuery2); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v", err)
	}
	if _, err := s.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: %v", err)
	}
}

func TestRingEvictionAndCursor(t *testing.T) {
	g := newRing(4)
	for i := 0; i < 10; i++ {
		g.append(stream.Result{Start: int64(i)})
	}
	rows, missed := g.readAfter(-1, 0)
	if missed != 6 || len(rows) != 4 || rows[0].Seq != 6 || rows[3].Seq != 9 {
		t.Fatalf("rows = %+v, missed = %d", rows, missed)
	}
	rows, missed = g.readAfter(7, 0)
	if missed != 0 || len(rows) != 2 || rows[0].Seq != 8 {
		t.Fatalf("cursor read = %+v, %d", rows, missed)
	}
	if rows, _ := g.readAfter(9, 0); rows != nil {
		t.Fatalf("drained cursor returned %+v", rows)
	}
	if rows, _ := g.readAfter(-1, 3); len(rows) != 3 {
		t.Fatalf("limit ignored: %+v", rows)
	}
	delivered, dropped := g.counters()
	if delivered != 10 || dropped != 6 {
		t.Fatalf("counters = %d, %d", delivered, dropped)
	}
	g.closeRing()
	g.append(stream.Result{}) // no-op, must not panic
	if !g.isClosed() {
		t.Fatal("ring must report closed")
	}
	select {
	case <-g.waitCh():
	default:
		t.Fatal("closed ring's waitCh must be ready")
	}
}

func TestGateSuppression(t *testing.T) {
	// A drop-policy late event must not resurrect dropped state: query
	// a's windows straddling b's registration migrate and stay exact
	// (the late event at t=3 is NOT in them), while b's own windows —
	// new to the plan — must not report instances from before the epoch
	// (their pre-epoch events are unrecoverable).
	s := New(Config{Shards: 1, ReorderBound: 0, Policy: reorder.Drop})
	defer s.Close()
	if _, err := s.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]stream.Event{{Time: 5, Key: 1, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("b", demoQuery2); err != nil {
		t.Fatal(err)
	}
	st, err := s.Ingest([]stream.Event{{Time: 3, Key: 1, Value: 9}, {Time: 40, Key: 1, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Late != 1 {
		t.Fatalf("late = %d, want 1", st.Late)
	}
	// Query a keeps its straddling windows across the re-plan, with the
	// late event excluded: [0,8) and [0,16) hold only the t=5 event.
	for _, r := range serverRows(t, s, "a") {
		if r.start == 0 && r.value != 2 {
			t.Errorf("query a window [%d,%d) = %g; late event resurrected or state lost",
				r.start, r.end, r.value)
		}
	}
	if rows := serverRows(t, s, "a"); len(rows) == 0 {
		t.Fatal("query a lost its migrated windows")
	}
	// Query b's windows are new at released horizon 6.
	for _, r := range serverRows(t, s, "b") {
		if r.start < 6 {
			t.Errorf("query b delivered pre-epoch window [%d,%d)", r.start, r.end)
		}
	}
}
