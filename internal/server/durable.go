// Durability integration: the serving layer over internal/wal.
//
// A durable server appends every accepted ingest batch and registry
// mutation to the write-ahead log before acking the client, and
// periodically captures an offset-stamped snapshot (the v3 server
// checkpoint plus the per-query result-ring state) that is written
// asynchronously off the ingest path. Recovery in Open is
//
//	load newest valid snapshot → open + verify the log → restore the
//	snapshot → replay records at/after its offset → serve
//
// and is byte-identical to an uninterrupted run: ordered drain plus the
// uniform ingest chunking make ring contents a pure function of the
// Ingest-call sequence, one WAL record preserves exactly one live
// Ingest call, and the snapshot carries the ring sequence state, so
// both the NDJSON and the binary frame encodings of every result
// stream come out bit-for-bit the same after a crash. Adaptive
// re-plans are deliberately not logged: they are a deterministic
// function of the replayed batch sequence and re-derive on their own.
package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"

	"factorwindows/internal/stream"
	"factorwindows/internal/wal"
	"factorwindows/internal/wire"
)

// walControl is the JSON payload of a control record: one logged
// registry mutation.
type walControl struct {
	Op  string `json:"op"` // register | unregister | replan
	ID  string `json:"id,omitempty"`
	SQL string `json:"sql,omitempty"`
	Eta int64  `json:"eta,omitempty"`
}

// durableSnapshotVersion is the snapshot codec generation.
const durableSnapshotVersion = 1

// snapshotsKept is how many snapshots survive pruning: the newest plus
// one fallback generation.
const snapshotsKept = 2

// durableSnapshot is the gob payload of a snap-*.fws file: the regular
// server checkpoint plus the result-ring delivery state the checkpoint
// deliberately omits. Rings are transient for client-driven restores
// (a new server, a new sequence space), but crash recovery promises
// byte-identical result streams, and those bytes include ring sequence
// numbers and eviction positions.
type durableSnapshot struct {
	Version    int
	Offset     int64 // records [0, Offset) are reflected in this state
	Checkpoint []byte
	Rings      []ringState // sorted by ID
}

// Open builds a server, recovering durable state from cfg.WALDir when
// cfg.Durable is set: the newest valid snapshot is restored, the log's
// manifest chain and sealed segments are verified, the tail at/after
// the snapshot offset is replayed through the regular ingest path, and
// only then does the server start appending. Corruption anywhere in
// the sealed history or the snapshot is an error — never a silent
// partial replay.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if !cfg.Durable {
		return s, nil
	}
	if cfg.WALDir == "" {
		return nil, fmt.Errorf("server: Durable requires WALDir")
	}
	snapOff, snapData, err := wal.LatestSnapshot(cfg.WALFS, cfg.WALDir)
	if err != nil {
		return nil, fmt.Errorf("server: recovering snapshot: %w", err)
	}
	log, err := wal.Open(wal.Options{
		Dir:           cfg.WALDir,
		Fsync:         cfg.Fsync,
		FsyncInterval: cfg.FsyncInterval,
		SegmentBytes:  cfg.WALSegmentBytes,
		MinOffset:     snapOff,
		FS:            cfg.WALFS,
		RetryAttempts: cfg.WALRetries,
		RetryBackoff:  cfg.WALRetryBackoff,
	})
	if err != nil {
		return nil, err
	}
	s.wal = log
	s.walReplaying = true
	if snapData != nil {
		if err := s.restoreSnapshot(snapData, snapOff); err != nil {
			log.Close(false)
			return nil, err
		}
	}
	if err := log.Replay(snapOff, s.applyRecord); err != nil {
		log.Close(false)
		return nil, fmt.Errorf("server: replaying wal: %w", err)
	}
	s.mu.Lock()
	s.walReplaying = false
	s.lastSnapOffset = snapOff
	s.mu.Unlock()
	return s, nil
}

// restoreSnapshot loads one durable snapshot: the embedded server
// checkpoint through the regular (validating) restore path, then the
// ring delivery state on top of the fresh rings that restore built.
func (s *Server) restoreSnapshot(data []byte, offset int64) error {
	var ds durableSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ds); err != nil {
		return fmt.Errorf("server: decoding snapshot: %w", err)
	}
	if ds.Version != durableSnapshotVersion {
		return fmt.Errorf("server: snapshot version %d not supported", ds.Version)
	}
	if ds.Offset != offset {
		return fmt.Errorf("server: snapshot payload stamped %d, file stamped %d", ds.Offset, offset)
	}
	if err := s.RestoreCheckpoint(ds.Checkpoint); err != nil {
		return fmt.Errorf("server: restoring snapshot checkpoint: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rs := range ds.Rings {
		if reg, ok := s.queries[rs.ID]; ok {
			reg.ring.importState(rs)
		}
	}
	return nil
}

// applyRecord replays one log record through the same code paths the
// live request took, under the walReplaying guard so nothing is
// re-appended.
func (s *Server) applyRecord(rec wal.Record) error {
	switch rec.Frame.Kind {
	case wire.KindEvents:
		s.replayBatch = rec.Frame.AppendEvents(s.replayBatch[:0])
		if _, err := s.Ingest(s.replayBatch); err != nil {
			return fmt.Errorf("record %d: %w", rec.Offset, err)
		}
		return nil
	case wire.KindControl:
		var op walControl
		if err := json.Unmarshal(rec.Frame.Control(), &op); err != nil {
			return fmt.Errorf("record %d: bad control payload: %w", rec.Offset, err)
		}
		switch op.Op {
		case "register":
			if _, err := s.Register(op.ID, op.SQL); err != nil {
				return fmt.Errorf("record %d: register %q: %w", rec.Offset, op.ID, err)
			}
		case "unregister":
			if err := s.Unregister(op.ID); err != nil {
				return fmt.Errorf("record %d: unregister %q: %w", rec.Offset, op.ID, err)
			}
		case "replan":
			if err := s.Replan(op.Eta); err != nil {
				return fmt.Errorf("record %d: replan: %w", rec.Offset, err)
			}
		default:
			return fmt.Errorf("record %d: unknown control op %q", rec.Offset, op.Op)
		}
		return nil
	default:
		return fmt.Errorf("record %d: unexpected frame kind %d", rec.Offset, rec.Frame.Kind)
	}
}

// stageEventsLocked appends one accepted ingest batch to the log.
// Callers hold s.mu — staging under the same lock that serializes the
// in-memory apply is what makes log order equal application order —
// and Wait on the returned commit only after releasing it, so
// concurrent clients' records share one group-commit fsync.
func (s *Server) stageEventsLocked(events []stream.Event) (*wal.Commit, error) {
	if s.wal == nil || s.walReplaying || len(events) == 0 {
		return nil, nil
	}
	c, err := s.wal.Append(events)
	if err != nil {
		s.walErr = err
		return nil, fmt.Errorf("server: %w: wal append: %v", ErrDegraded, err)
	}
	return c, nil
}

// stageControlLocked appends one applied registry mutation. Same
// locking contract as stageEventsLocked.
func (s *Server) stageControlLocked(op walControl) (*wal.Commit, error) {
	if s.wal == nil || s.walReplaying {
		return nil, nil
	}
	payload, err := json.Marshal(op)
	if err != nil {
		return nil, fmt.Errorf("server: encoding control record: %w", err)
	}
	c, err := s.wal.AppendControl(payload)
	if err != nil {
		s.walErr = err
		return nil, fmt.Errorf("server: %w: wal append: %v", ErrDegraded, err)
	}
	return c, nil
}

// awaitCommit blocks on one record's group commit (without s.mu). A
// commit failure fail-stops the durable path: the in-memory state has
// already advanced past what the log can ever replay, so every later
// mutation is rejected until the process restarts and recovers.
func (s *Server) awaitCommit(c *wal.Commit) (durable bool, err error) {
	if c == nil {
		return false, nil
	}
	durable, err = c.Wait()
	if err != nil {
		s.mu.Lock()
		if s.walErr == nil {
			s.walErr = err
		}
		s.mu.Unlock()
		return false, fmt.Errorf("server: %w: wal commit: %v", ErrDegraded, err)
	}
	return durable, nil
}

// walGateLocked rejects mutations once the durable path has failed:
// applying changes the log cannot hold would silently void the
// recovery guarantee. The wrapped ErrDegraded maps to 503 with a
// Retry-After at the transport — ingest sheds while reads keep
// serving (read-only degraded mode). Callers hold s.mu.
func (s *Server) walGateLocked() error {
	if s.walErr != nil {
		return fmt.Errorf("server: %w: %v (ingest sheds; reads still serve; restart to recover)", ErrDegraded, s.walErr)
	}
	return nil
}

// captureSnapshotLocked serializes the durable snapshot payload and
// the offset it covers. Callers hold s.mu with no batch in flight, so
// the state is consistent exactly at the log's next-record offset.
func (s *Server) captureSnapshotLocked() (offset int64, data []byte, err error) {
	cp, err := s.checkpointLocked()
	if err != nil {
		return 0, nil, err
	}
	ds := durableSnapshot{
		Version:    durableSnapshotVersion,
		Offset:     s.wal.NextOffset(),
		Checkpoint: cp,
	}
	for _, id := range s.sortedIDs() {
		ds.Rings = append(ds.Rings, s.queries[id].ring.exportState(id))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ds); err != nil {
		return 0, nil, fmt.Errorf("server: encoding snapshot: %w", err)
	}
	return ds.Offset, buf.Bytes(), nil
}

// Snapshot captures the durable snapshot now and writes it
// asynchronously (POST /checkpoint lands here). It returns the offset
// the snapshot covers; the write happens off the ingest path, and its
// completion shows up in /stats as last_snapshot_offset. At most one
// write is in flight; a second request while busy returns ErrConflict.
func (s *Server) Snapshot() (int64, error) {
	s.mu.Lock()
	if s.wal == nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: server is not durable", ErrNotFound)
	}
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if err := s.walGateLocked(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	if s.snapBusy {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: a snapshot write is already in flight", ErrConflict)
	}
	offset, data, err := s.captureSnapshotLocked()
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.startSnapshotWriteLocked(offset, data)
	s.mu.Unlock()
	return offset, nil
}

// maybeSnapshotLocked auto-triggers a snapshot when SnapshotEvery
// records have accumulated since the last one and no write is in
// flight. Capture runs under the lock the caller already holds; the
// file write does not. Capture failures are recorded for /stats, not
// raised — the ingest that tripped the threshold already succeeded.
func (s *Server) maybeSnapshotLocked() {
	if s.wal == nil || s.walReplaying || s.snapBusy || s.cfg.SnapshotEvery <= 0 {
		return
	}
	if s.wal.NextOffset()-s.lastSnapOffset < s.cfg.SnapshotEvery {
		return
	}
	offset, data, err := s.captureSnapshotLocked()
	if err != nil {
		s.snapErr = err
		return
	}
	s.startSnapshotWriteLocked(offset, data)
}

// startSnapshotWriteLocked hands one captured snapshot to the async
// writer. Callers hold s.mu and have checked snapBusy.
func (s *Server) startSnapshotWriteLocked(offset int64, data []byte) {
	s.snapBusy = true
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		err := s.writeSnapshot(offset, data)
		s.mu.Lock()
		s.snapBusy = false
		s.snapErr = err
		if err == nil && offset > s.lastSnapOffset {
			s.lastSnapOffset = offset
		}
		s.mu.Unlock()
	}()
}

// writeSnapshot persists one captured snapshot and retires the log
// prefix it covers. It takes no locks; callers own the lastSnapOffset
// bookkeeping.
func (s *Server) writeSnapshot(offset int64, data []byte) error {
	if err := wal.WriteSnapshot(s.cfg.WALFS, s.cfg.WALDir, offset, data); err != nil {
		return err
	}
	if err := s.wal.TruncateBefore(offset); err != nil {
		return err
	}
	return wal.PruneSnapshots(s.cfg.WALFS, s.cfg.WALDir, snapshotsKept)
}

// restoreBarrierLocked persists the just-restored state synchronously:
// a client-driven restore rewrites the server wholesale, so records
// logged before it no longer describe the state — a crash before a new
// snapshot lands would replay them onto the restored state and corrupt
// it. The barrier fails closed: if the snapshot cannot be written, the
// durable path fail-stops rather than serve un-recoverable state.
// Callers hold s.mu.
func (s *Server) restoreBarrierLocked() error {
	offset, data, err := s.captureSnapshotLocked()
	if err == nil {
		err = s.writeSnapshot(offset, data)
	}
	if err != nil {
		s.walErr = fmt.Errorf("restore durability barrier: %w", err)
		return fmt.Errorf("server: %w", s.walErr)
	}
	if offset > s.lastSnapOffset {
		s.lastSnapOffset = offset
	}
	return nil
}

// Shutdown seals the durable state for a clean exit: a final snapshot
// at the current offset, the active segment sealed into the manifest,
// and every file closed. It returns the first flush failure so the
// process can exit non-zero — a clean-looking exit must not hide an
// unflushed log. Non-durable servers just Close.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	var (
		offset  int64
		data    []byte
		capErr  error
		capture bool
	)
	if s.wal != nil && !s.closed && s.walErr == nil {
		offset, data, capErr = s.captureSnapshotLocked()
		capture = capErr == nil
	}
	s.mu.Unlock()
	s.Close()
	s.snapWG.Wait()
	firstErr := capErr
	if capture {
		if err := s.writeSnapshot(offset, data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.wal != nil {
		if err := s.wal.Close(true); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
