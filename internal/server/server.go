// Package server is a long-running, multi-client serving layer over the
// factor-window engine: the paper's motivating scenario (Section I) as a
// service. Clients register ASAQL queries, stream events in, and read or
// stream each query's window results back out.
//
// Internally the live query set is jointly optimized by multiquery into
// one combined factor-window plan, executed on key-sharded engines by
// parallel, and fed through a reorder buffer that tolerates bounded
// out-of-order input. Registering or unregistering a query re-plans the
// whole set.
//
// # Re-planning semantics
//
// A query-set change starts a new epoch at the current release horizon R
// (every event below R has already been executed). The old pipeline is
// torn down without delivering its in-flight windows, and the new one
// delivers only window instances that start at or after R. Both halves
// of that rule serve exactness: an instance straddling R would have some
// of its events in the discarded pipeline, so any value reported for it
// would be partial. The visible contract is therefore: every delivered
// result is exact and complete, each instance is delivered at most once,
// and a query-set change (or a registration mid-stream) costs each query
// the window instances open across the boundary — at most max(range)
// ticks of output around the change, the standard streaming trade
// (subscribers see windows that start after they subscribe).
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"factorwindows/internal/agg"
	"factorwindows/internal/asaql"
	"factorwindows/internal/core"
	"factorwindows/internal/multiquery"
	"factorwindows/internal/parallel"
	"factorwindows/internal/reorder"
	"factorwindows/internal/stream"
	"factorwindows/internal/window"
)

// Sentinel errors, mapped to HTTP statuses by the handlers.
var (
	ErrNotFound = errors.New("not found")
	ErrConflict = errors.New("conflict")
	ErrClosed   = errors.New("server closed")
	// ErrEngine marks a failed execution pipeline (e.g. a corrupt
	// restored checkpoint violating the engine's input contract). The
	// pipeline is torn down; recovery is a registry change or a restore
	// from a valid checkpoint.
	ErrEngine = errors.New("engine failure")
)

// Config configures a Server.
type Config struct {
	// Shards is the key-shard count for parallel execution (<= 0 selects
	// GOMAXPROCS). It is fixed for the server's lifetime so that key
	// placement is stable across re-plans and checkpoints.
	Shards int
	// Factors enables the factor-window expansion (Algorithm 3) in the
	// joint optimization.
	Factors bool
	// ReorderBound is the out-of-order tolerance in ticks; events later
	// than that are handled per Policy.
	ReorderBound int64
	// Policy says what to do with events beyond the bound (drop/adjust).
	Policy reorder.Policy
	// ResultBuffer is the per-query result ring capacity (default 4096).
	ResultBuffer int
}

// registration is one live query.
type registration struct {
	id   string
	sql  string
	q    *asaql.Query
	ring *ring
}

// gate filters one epoch's result stream: results of windows that
// started before the epoch are suppressed (they would be partial), and
// the whole stream is muted while the epoch's pipeline is torn down so
// its final flush of open instances is discarded.
type gate struct {
	muted    atomic.Bool
	minStart int64 // immutable after pipeline construction
}

// pipeline is one epoch's execution stack: reorder buffer → key-sharded
// runner → routing sink → per-query rings.
type pipeline struct {
	plan   *multiquery.Plan
	runner *parallel.Runner
	buf    *reorder.Buffer
	gate   *gate
	rings  map[string]*ring // immutable snapshot of the epoch's queries
}

// Server hosts a dynamic set of ASAQL queries over one event stream.
// Registry and ingest mutations serialize on mu (the engine consumes an
// in-order stream, so ingestion is inherently sequential); result reads
// only touch the per-query rings and run lock-free with respect to mu.
type Server struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	queries  map[string]*registration
	fn       agg.Fn
	hasFn    bool
	pipe     *pipeline
	epoch    int64
	nextID   int64
	ingested int64
	dropped  int64 // events ingested while no query was live
	late     int64 // events beyond the reorder bound, across all epochs

	// carry preserves the reorder buffer's state (sealed horizon,
	// pending events) while no pipeline exists — unregistering the last
	// query must not unseal the horizon, or the next epoch would deliver
	// partial straddling windows.
	carry *reorder.State
	// engineErr records a pipeline failure; ingestion reports it until a
	// registry change or checkpoint restore rebuilds the pipeline.
	engineErr error
}

// New creates an idle server; queries and events arrive via the API.
func New(cfg Config) *Server {
	if cfg.ResultBuffer <= 0 {
		cfg.ResultBuffer = 4096
	}
	if cfg.ReorderBound < 0 {
		cfg.ReorderBound = 0
	}
	return &Server{cfg: cfg, queries: make(map[string]*registration)}
}

// WindowInfo describes one window of a registered query.
type WindowInfo struct {
	Name  string `json:"name"`
	Range int64  `json:"range"`
	Slide int64  `json:"slide"`
}

// QueryInfo is the externally visible state of one registered query.
type QueryInfo struct {
	ID        string       `json:"id"`
	SQL       string       `json:"query"`
	Fn        string       `json:"fn"`
	Windows   []WindowInfo `json:"windows"`
	Delivered int64        `json:"delivered"`
	Dropped   int64        `json:"dropped"`
}

func (r *registration) info(fn agg.Fn) QueryInfo {
	qi := QueryInfo{ID: r.id, SQL: r.sql, Fn: fn.String()}
	for _, nw := range r.q.Windows {
		qi.Windows = append(qi.Windows, WindowInfo{Name: nw.Name, Range: nw.W.Range, Slide: nw.W.Slide})
	}
	qi.Delivered, qi.Dropped = r.ring.counters()
	return qi
}

// Register parses and admits one query, re-planning the live set. An
// empty id is assigned automatically. All live queries must share the
// aggregate function (the multiquery joint-plan constraint); WHERE
// clauses and multi-aggregate SELECT lists are rejected because the
// combined plan runs every query over the same event stream.
func (s *Server) Register(id, sql string) (QueryInfo, error) {
	q, err := admitQuery(sql)
	if err != nil {
		return QueryInfo{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return QueryInfo{}, ErrClosed
	}
	if s.hasFn && q.Fn != s.fn {
		return QueryInfo{}, fmt.Errorf("%w: live queries aggregate with %v, cannot mix in %v", ErrConflict, s.fn, q.Fn)
	}
	if id == "" {
		for {
			s.nextID++
			id = fmt.Sprintf("q%d", s.nextID)
			if _, taken := s.queries[id]; !taken {
				break
			}
		}
	} else if _, taken := s.queries[id]; taken {
		return QueryInfo{}, fmt.Errorf("%w: query %q already registered", ErrConflict, id)
	}

	reg := &registration{id: id, sql: sql, q: q, ring: newRing(s.cfg.ResultBuffer)}
	s.queries[id] = reg
	prevFn, prevHas := s.fn, s.hasFn
	s.fn, s.hasFn = q.Fn, true
	if err := s.replan(); err != nil {
		delete(s.queries, id)
		s.fn, s.hasFn = prevFn, prevHas
		return QueryInfo{}, err
	}
	return reg.info(s.fn), nil
}

// admitQuery parses and validates one query under the server's
// admission rules. RestoreCheckpoint runs the same gauntlet, so a
// crafted checkpoint cannot smuggle in a query Register would reject
// (and then silently serve wrong results for).
func admitQuery(sql string) (*asaql.Query, error) {
	q, err := asaql.Parse(sql)
	if err != nil {
		return nil, err
	}
	if len(q.Aggregates) > 1 {
		return nil, fmt.Errorf("server: query has %d aggregate calls; register one query per aggregate", len(q.Aggregates))
	}
	if len(q.Where) > 0 {
		return nil, fmt.Errorf("server: WHERE clauses are per-query filters and cannot share the joint plan; filter the stream upstream")
	}
	if !agg.Shareable(q.Fn) {
		return nil, fmt.Errorf("server: aggregate %v is holistic and not supported by the serving engine", q.Fn)
	}
	return q, nil
}

// Unregister removes a query and re-plans the remaining set. The query's
// result ring is closed; undelivered rows stay readable until then-open
// streams drain.
func (s *Server) Unregister(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	reg, ok := s.queries[id]
	if !ok {
		return fmt.Errorf("%w: query %q", ErrNotFound, id)
	}
	delete(s.queries, id)
	if len(s.queries) == 0 {
		s.hasFn = false
	}
	if err := s.replan(); err != nil {
		// Re-planning a strict subset of a set that planned before cannot
		// fail; if it somehow does, readmit the query to stay consistent.
		s.queries[id] = reg
		s.hasFn = true
		return err
	}
	reg.ring.closeRing()
	return nil
}

// replan rebuilds the execution pipeline for the current query set. The
// new pipeline is constructed completely before the old one is torn
// down, so a failure leaves the server running on the previous plan.
// Pending out-of-order events and the sealed release horizon carry over
// through the reorder buffer's state snapshot. Callers hold s.mu.
func (s *Server) replan() error {
	var carried *reorder.State
	minStart := reorder.NoRelease
	if s.pipe != nil {
		st := s.pipe.buf.Snapshot()
		carried = &st
	} else if s.carry != nil {
		carried = s.carry
	}
	if carried != nil {
		minStart = carried.Released
	}

	var np *pipeline
	if len(s.queries) > 0 {
		var err error
		np, err = s.buildPipeline(minStart, carried, nil)
		if err != nil {
			return err
		}
	}
	if s.pipe != nil {
		s.teardown()
	}
	s.pipe = np
	if np != nil {
		s.carry = nil // the state lives in the pipeline again
	} else {
		s.carry = carried
	}
	s.engineErr = nil
	s.epoch++
	return nil
}

// buildPipeline assembles one epoch's stack for the current query set.
// carried restores the reorder buffer (pending events, sealed horizon);
// engineState, when non-nil, resumes the shard engines from a
// parallel.Runner snapshot instead of fresh state. Callers hold s.mu.
func (s *Server) buildPipeline(minStart int64, carried *reorder.State, engineState []byte) (*pipeline, error) {
	ids := s.sortedIDs()
	qs := make([]multiquery.Query, 0, len(ids))
	for _, id := range ids {
		reg := s.queries[id]
		ws := make([]window.Window, 0, len(reg.q.Windows))
		for _, nw := range reg.q.Windows {
			ws = append(ws, nw.W)
		}
		qs = append(qs, multiquery.Query{ID: id, Windows: ws})
	}
	mp, err := multiquery.Optimize(qs, s.fn, core.Options{Factors: s.cfg.Factors})
	if err != nil {
		return nil, err
	}
	g := &gate{minStart: minStart}
	rings := make(map[string]*ring, len(ids))
	for _, id := range ids {
		rings[id] = s.queries[id].ring
	}
	sink := routeSink(mp, g, rings)
	var runner *parallel.Runner
	if engineState != nil {
		runner, err = parallel.Restore(mp.Combined, sink, engineState)
	} else {
		runner, err = parallel.New(mp.Combined, sink, s.cfg.Shards)
	}
	if err != nil {
		return nil, err
	}
	var buf *reorder.Buffer
	if carried != nil {
		buf, err = reorder.NewFromState(runner, *carried, s.onLate)
	} else {
		buf, err = reorder.New(runner, s.cfg.ReorderBound, s.cfg.Policy, s.onLate)
	}
	if err != nil {
		g.muted.Store(true)
		runner.Close()
		return nil, err
	}
	return &pipeline{plan: mp, runner: runner, buf: buf, gate: g, rings: rings}, nil
}

// teardown discards the current pipeline: its flush of open window
// instances is muted (those instances are partial by construction).
// Callers hold s.mu.
func (s *Server) teardown() {
	s.pipe.gate.muted.Store(true)
	s.pipe.runner.Close()
	s.pipe = nil
}

// routeSink builds the epoch's result path: the multiquery batch
// routing sink tags whole same-window runs with their subscribers, the
// gate enforces the epoch contract, and each subscriber's ring receives
// the surviving run in one appendBatch. The scratch slice is safe
// without locking because the parallel runner serializes sink access.
func routeSink(mp *multiquery.Plan, g *gate, rings map[string]*ring) stream.Sink {
	var scratch []stream.Result
	return mp.BatchSink(func(rb multiquery.RoutedBatch) {
		if g.muted.Load() {
			return
		}
		rows := rb.Results
		// Suppress rows of instances that straddle the epoch boundary.
		// Within a run starts are non-decreasing per shard flush, but the
		// filter does not rely on that.
		filtered := false
		for i := range rows {
			if rows[i].Start < g.minStart {
				filtered = true
				break
			}
		}
		if filtered {
			scratch = scratch[:0]
			for i := range rows {
				if rows[i].Start >= g.minStart {
					scratch = append(scratch, rows[i])
				}
			}
			rows = scratch
		}
		for _, id := range rb.QueryIDs {
			if rg := rings[id]; rg != nil {
				rg.appendBatch(rows)
			}
		}
		// Cap the retained filter scratch like every other egress buffer:
		// one straddling high-cardinality burst must not pin an
		// instance-sized copy for the pipeline's lifetime.
		if cap(scratch) > routeScratchRetain {
			scratch = nil
		}
	})
}

// routeScratchRetain bounds routeSink's epoch-filter scratch, in rows
// (the serving-layer counterpart of the executors' egressRetain).
const routeScratchRetain = 4096

// onLate counts events beyond the reorder bound. It runs inside
// Buffer.Push, which the server only calls under s.mu.
func (s *Server) onLate(stream.Event) { s.late++ }

// IngestStatus reports the outcome of one ingest call.
type IngestStatus struct {
	Accepted int   `json:"accepted"`
	Dropped  int   `json:"dropped"` // discarded: no live queries
	Late     int64 `json:"late"`    // cumulative, server lifetime
	Buffered int   `json:"buffered"`
	Epoch    int64 `json:"epoch"`
}

// Ingest pushes one batch of events into the pipeline. Events may be out
// of order up to the configured bound; negative timestamps are rejected.
// Batches from concurrent clients serialize; disorder across them is
// tolerated like any other disorder. On return, every result the batch
// completed is visible to readers (the runner is barriered).
func (s *Server) Ingest(events []stream.Event) (IngestStatus, error) {
	for i := range events {
		if events[i].Time < 0 {
			return IngestStatus{}, fmt.Errorf("server: event %d has negative time %d", i, events[i].Time)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return IngestStatus{}, ErrClosed
	}
	if s.engineErr != nil {
		return IngestStatus{}, fmt.Errorf("%w: %v (re-register queries or restore a valid checkpoint)",
			ErrEngine, s.engineErr)
	}
	s.ingested += int64(len(events))
	st := IngestStatus{Accepted: len(events), Epoch: s.epoch, Late: s.late}
	if s.pipe == nil {
		s.dropped += int64(len(events))
		st.Accepted = 0
		st.Dropped = len(events)
		return st, nil
	}
	s.pipe.buf.Push(events)
	// Broadcast the release horizon as a watermark so shards whose keys
	// went quiet still fire their completed windows, then sync so every
	// completed result is in its ring before we return.
	if rel := s.pipe.buf.Released(); rel > reorder.NoRelease {
		s.pipe.runner.Advance(rel)
	}
	s.pipe.runner.Barrier()
	if err := s.pipe.runner.Err(); err != nil {
		// A poisoned shard means the epoch's output is incomplete and
		// its state unusable; tear the pipeline down rather than keep
		// serving wrong answers, and report the failure persistently.
		// Only the engine is compromised: the reorder buffer's sealed
		// horizon is still sound, and carrying it keeps the next epoch
		// (after re-registration) from delivering partial straddling
		// windows as exact.
		carried := s.pipe.buf.Snapshot()
		s.teardown()
		s.carry = &carried
		s.engineErr = err
		return IngestStatus{}, fmt.Errorf("%w: %v (pipeline reset; re-register queries or restore a valid checkpoint)",
			ErrEngine, err)
	}
	st.Late = s.late
	st.Buffered = s.pipe.buf.Buffered()
	return st, nil
}

// Queries lists the live queries, sorted by ID.
func (s *Server) Queries() []QueryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueryInfo, 0, len(s.queries))
	for _, reg := range s.queries {
		out = append(out, reg.info(s.fn))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Query returns one query's state.
func (s *Server) Query(id string) (QueryInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, ok := s.queries[id]
	if !ok {
		return QueryInfo{}, fmt.Errorf("%w: query %q", ErrNotFound, id)
	}
	return reg.info(s.fn), nil
}

// Results returns up to limit result rows of query id with sequence
// numbers above after (limit <= 0 means all buffered), plus the number
// of requested rows already evicted from the ring.
func (s *Server) Results(id string, after int64, limit int) ([]ResultRow, int64, error) {
	rg, err := s.ringOf(id)
	if err != nil {
		return nil, 0, err
	}
	rows, missed := rg.readAfter(after, limit)
	return rows, missed, nil
}

// ringOf resolves a query's ring under the lock; reads then proceed
// without it.
func (s *Server) ringOf(id string) (*ring, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("%w: query %q", ErrNotFound, id)
	}
	return reg.ring, nil
}

// Stats is the server-wide state summary.
type Stats struct {
	Queries      int    `json:"queries"`
	Epoch        int64  `json:"epoch"`
	Fn           string `json:"fn,omitempty"`
	Shards       int    `json:"shards"`
	Ingested     int64  `json:"ingested"`
	Dropped      int64  `json:"dropped"`
	Late         int64  `json:"late"`
	Buffered     int    `json:"buffered"`
	Released     int64  `json:"released"`
	EngineEvents int64  `json:"engine_events"`
	Updates      int64  `json:"engine_updates"`
	CombinedCost string `json:"combined_cost,omitempty"`
	SeparateCost string `json:"separate_cost,omitempty"`
	Error        string `json:"error,omitempty"` // persistent pipeline failure, if any
}

// StatsNow reports the current server state. The engine-update counter
// is read after a barrier, so it is consistent with everything ingested
// so far.
func (s *Server) StatsNow() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Queries:  len(s.queries),
		Epoch:    s.epoch,
		Shards:   s.cfg.Shards,
		Ingested: s.ingested,
		Dropped:  s.dropped,
		Late:     s.late,
	}
	if s.hasFn {
		st.Fn = s.fn.String()
	}
	if s.engineErr != nil {
		st.Error = s.engineErr.Error()
	}
	if s.pipe != nil {
		s.pipe.runner.Barrier()
		st.Shards = s.pipe.runner.Shards()
		st.Buffered = s.pipe.buf.Buffered()
		if rel := s.pipe.buf.Released(); rel > reorder.NoRelease {
			st.Released = rel
		}
		st.EngineEvents = s.pipe.runner.Events()
		st.Updates = s.pipe.runner.TotalUpdates()
		st.CombinedCost = s.pipe.plan.CombinedCost
		st.SeparateCost = s.pipe.plan.SeparateCost
	}
	return st
}

// Close tears down the pipeline and closes every result ring. Streaming
// readers drain and finish; subsequent mutations return ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.pipe != nil {
		s.teardown()
	}
	for _, reg := range s.queries {
		reg.ring.closeRing()
	}
}
