// Package server is a long-running, multi-client serving layer over the
// factor-window engine: the paper's motivating scenario (Section I) as a
// service. Clients register ASAQL queries, stream events in, and read or
// stream each query's window results back out.
//
// Internally the live query set is jointly optimized by multiquery into
// one combined factor-window plan, executed on key-sharded engines by
// parallel, and fed through a reorder buffer that tolerates bounded
// out-of-order input. Registering or unregistering a query re-plans the
// whole set, and with Config.Adaptive the server also re-plans itself
// when the observed workload (event rate over active key cardinality)
// drifts far enough that the cost model prefers a different sharing
// structure.
//
// # Re-planning semantics
//
// A plan change starts a new epoch at the current release horizon R
// (every event strictly below R has already been executed; every future
// event arrives at or above it). The swap is zero-gap: before the old
// pipeline is torn down, every shard engine exports the canonical state
// of its open window instances (parallel.ExportCanonical), and the new
// pipeline resumes them wherever the window survives into the new plan
// — whatever the sharing structure on either side (see
// engine/migrate.go for the exactness argument). The visible contract:
// every delivered result is exact and complete, each window instance is
// delivered at most once, and a window that exists across a re-plan
// loses nothing. Only windows genuinely new to the plan (a query
// registered mid-stream whose windows nobody computed before) start at
// R: their earlier instances would be partial, so the engine suppresses
// results of instances starting before R — subscribers to a new window
// see instances that start after they subscribe. Unregistering the last
// query still discards open state (there is no pipeline to carry it),
// sealing the horizon so a later epoch never reports partial straddlers.
package server

import (
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"factorwindows/internal/adaptive"
	"factorwindows/internal/admit"
	"factorwindows/internal/agg"
	"factorwindows/internal/asaql"
	"factorwindows/internal/core"
	"factorwindows/internal/cost"
	"factorwindows/internal/engine"
	"factorwindows/internal/multiquery"
	"factorwindows/internal/parallel"
	"factorwindows/internal/reorder"
	"factorwindows/internal/router"
	"factorwindows/internal/stream"
	"factorwindows/internal/wal"
	"factorwindows/internal/window"
)

// Sentinel errors, mapped to HTTP statuses by the handlers.
var (
	ErrNotFound = errors.New("not found")
	ErrConflict = errors.New("conflict")
	ErrClosed   = errors.New("server closed")
	// ErrEngine marks a failed execution pipeline (e.g. a corrupt
	// restored checkpoint violating the engine's input contract). The
	// pipeline is torn down; recovery is a registry change or a restore
	// from a valid checkpoint.
	ErrEngine = errors.New("engine failure")
	// ErrDegraded marks read-only degraded mode: the durable log has
	// failed its retry budget, so every mutation sheds (503 with a
	// Retry-After hint) while queries and result streams keep serving
	// what was already accepted. Recovery is a process restart, which
	// replays the verified log. /readyz reports it to load balancers.
	ErrDegraded = errors.New("degraded: durable log failed")
)

// Config configures a Server.
type Config struct {
	// Shards is the key-shard count for parallel execution (<= 0 selects
	// GOMAXPROCS). It is fixed for the server's lifetime so that key
	// placement is stable across re-plans and checkpoints.
	Shards int
	// Factors enables the factor-window expansion (Algorithm 3) in the
	// joint optimization.
	Factors bool
	// ReorderBound is the out-of-order tolerance in ticks; events later
	// than that are handled per Policy.
	ReorderBound int64
	// Policy says what to do with events beyond the bound (drop/adjust).
	Policy reorder.Policy
	// ResultBuffer is the per-query result ring capacity (default 4096).
	ResultBuffer int

	// Adaptive enables cost-model-driven re-planning: the ingest path
	// tracks the event rate and active key cardinality, re-prices the
	// running plan under the observed per-key rate η, and re-plans in
	// place (with exact state migration) when the deployed structure
	// overpays the optimum by AdaptiveOverpay.
	Adaptive bool
	// AdaptiveEpoch is the re-evaluation interval in stream ticks
	// (default 1024).
	AdaptiveEpoch int64
	// AdaptiveOverpay is the re-plan threshold on the deployed/optimal
	// cost ratio; values at or below 1 select the default 1.2 (re-plan
	// when the running plan is ≥20% over the observed optimum).
	AdaptiveOverpay float64

	// ExactMedian is the holistic exactness knob. By default (false)
	// MEDIAN queries are admitted by rewriting them to the sketch-backed
	// PERCENTILE at φ=0.5 — bounded memory, approximate answers. When
	// true the server promises exact medians only, and since the shared
	// serving engine cannot evaluate holistic functions, MEDIAN queries
	// are rejected at admission instead of approximated silently.
	ExactMedian bool

	// Durable turns on the write-ahead log: every accepted ingest batch
	// and registry mutation is appended (and, per Fsync, fsynced) before
	// the client is acked, and server.Open recovers snapshot + log tail
	// after a crash. Requires WALDir; use Open, not New, to construct a
	// durable server.
	Durable bool
	// WALDir is the log directory (segments, manifest, snapshots).
	WALDir string
	// Fsync is the append durability policy (see wal.FsyncPolicy).
	Fsync wal.FsyncPolicy
	// FsyncInterval is the background sync cadence under
	// wal.FsyncInterval (default 50ms).
	FsyncInterval time.Duration
	// WALSegmentBytes overrides the segment rotation threshold (tests).
	WALSegmentBytes int64
	// SnapshotEvery auto-captures a snapshot each time that many log
	// records accumulate past the last one (0: manual POST /checkpoint
	// and shutdown only). Snapshots bound both replay time and log disk
	// use — the covered prefix is truncated once the write lands.
	SnapshotEvery int64
	// WALFS overrides the log's filesystem (fault-injection tests).
	WALFS wal.FS
	// WALRetries is the transient-fault retry budget for WAL segment
	// writes and fsyncs (exponential backoff) before the durable path
	// fail-stops into degraded mode. Zero keeps strict fail-fast.
	WALRetries int
	// WALRetryBackoff is the first WAL retry's backoff, doubling per
	// attempt (default 1ms).
	WALRetryBackoff time.Duration

	// MaxInflightBytes caps the total ingest request bytes admitted at
	// once across all clients (0: no admission control). Requests over
	// budget wait up to AdmitWait, then shed with 429 + Retry-After.
	MaxInflightBytes int64
	// MaxSourceBytes is the same budget per source (client IP).
	MaxSourceBytes int64
	// AdmitWait bounds how long an over-budget ingest may wait for
	// capacity before it sheds (0: shed immediately).
	AdmitWait time.Duration
	// RetryAfter is the backoff hint attached to 429/503 sheds
	// (default 1s).
	RetryAfter time.Duration

	// ReorderCap bounds the reorder buffer's pending-event heap in
	// events (0: unbounded); ReorderCapPolicy picks what happens at the
	// cap (force-release oldest vs reject newest). Drops are accounted
	// in /stats, never silent.
	ReorderCap       int
	ReorderCapPolicy reorder.CapPolicy
	// MaxStreamSubs caps live subscriptions per stream-listener
	// connection (0 selects 1024; negative disables the cap).
	MaxStreamSubs int
	// MaxBodyBytes caps request bodies on the buffering ingest codecs
	// — JSON array and CSV, which read the whole body before decoding
	// (0 selects 64 MiB). The streaming codecs (NDJSON, frames) are
	// bounded by admission instead.
	MaxBodyBytes int64

	// Workers switches execution to the distributed tier: shard engines
	// run in fwworker processes at these addresses instead of in-process
	// goroutines, with the router consistent-hashing keys across them.
	// Shards still fixes the shard count; workers may be added, drained,
	// and reassigned at runtime (POST /topology) without changing key
	// placement. Empty keeps the single-process parallel runner.
	Workers []string
	// WorkerDial overrides how worker connections are opened (tests);
	// nil selects net.Dial("tcp", addr).
	WorkerDial func(addr string) (net.Conn, error)
	// WorkerCheckpointEvery is the router's journal-compaction cadence
	// in barriers (0 selects the router default). Smaller values bound
	// failover replay work; larger ones trade that for fewer state
	// exports on the barrier path.
	WorkerCheckpointEvery int64
}

// registration is one live query.
type registration struct {
	id   string
	sql  string
	q    *asaql.Query
	ring *ring
}

// gate mutes one epoch's result stream while its pipeline is torn down,
// so the teardown flush of instances that migrated to the next epoch
// (or belong to unregistered queries) is discarded. Partial-instance
// suppression lives in the engine now (per-node emit floors), not here.
type gate struct {
	muted atomic.Bool
}

// execRunner is the execution tier under the reorder buffer: the
// in-process key-sharded parallel.Runner, or the distributed
// router.Runner speaking the frame protocol to fwworker processes.
// Both honor the same contract — ordered drain determinism, canonical
// export/snapshot for zero-gap re-plans and checkpoints, poison
// reported through Err — so everything above the runner is oblivious
// to where the shard engines live.
type execRunner interface {
	Process(events []stream.Event)
	Advance(t int64)
	Barrier()
	Close()
	Err() error
	Events() int64
	Shards() int
	TotalUpdates() int64
	EgressPeak() int64
	SetOrderedDrain(on bool)
	ExportCanonical(horizon int64) ([]*engine.Export, error)
	Snapshot() ([]byte, error)
	RaiseEmitFloor(v int64)
}

var (
	_ execRunner = (*parallel.Runner)(nil)
	_ execRunner = (*router.Runner)(nil)
)

// pipeline is one epoch's execution stack: reorder buffer → key-sharded
// runner → routing sink → per-query rings.
type pipeline struct {
	plan   *multiquery.Plan
	runner execRunner
	buf    *reorder.Buffer
	gate   *gate
	rings  map[string]*ring // immutable snapshot of the epoch's queries
}

// Server hosts a dynamic set of ASAQL queries over one event stream.
// Registry and ingest mutations serialize on mu (the engine consumes an
// in-order stream, so ingestion is inherently sequential); result reads
// only touch the per-query rings and run lock-free with respect to mu.
type Server struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	queries  map[string]*registration
	fn       agg.Fn
	param    float64 // finalize parameter shared by the live set (φ / k)
	hasFn    bool
	pipe     *pipeline
	epoch    int64
	nextID   int64
	ingested int64
	dropped  int64 // events ingested while no query was live
	late     int64 // events beyond the reorder bound, across all epochs

	// planEta is the cost-model rate η the current plan was optimized
	// under (0: the default η=1). Adaptive re-planning moves it; it is
	// part of a checkpoint's identity because it shapes the plan.
	planEta int64
	// migrated counts window instances handed over across re-plans.
	migrated int64
	// replans counts plan swaps by trigger.
	replans ReplanCounts

	// obs is the adaptive observation window over the ingest path.
	obs struct {
		events int64
		keys   map[uint64]struct{}
		start  int64 // first tick of the window (-1: unset)
		last   int64 // newest tick seen
	}
	// lastEta/lastKeys/lastOverpay record the most recent adaptive
	// evaluation, for /stats.
	lastEta     int64
	lastKeys    int
	lastOverpay float64

	// workers is the live distributed worker set (nil: single-process
	// execution). Seeded from Config.Workers and grown by AddWorker, it
	// outlives any one pipeline so re-plans and checkpoint restores
	// rebuild onto the current topology, not the boot-time one.
	workers []string

	// carry preserves the reorder buffer's state (sealed horizon,
	// pending events) while no pipeline exists — unregistering the last
	// query must not unseal the horizon, or the next epoch would deliver
	// partial straddling windows.
	carry *reorder.State
	// engineErr records a pipeline failure; ingestion reports it until a
	// registry change or checkpoint restore rebuilds the pipeline.
	engineErr error

	// Durability state (nil/zero on non-durable servers; durable.go).
	wal            *wal.Log
	walReplaying   bool  // recovery replay in flight: apply, don't re-append
	walErr         error // sticky commit failure: mutations fail-stop
	lastSnapOffset int64
	snapBusy       bool  // one async snapshot write at a time
	snapErr        error // last snapshot write failure, for /stats
	snapWG         sync.WaitGroup
	replayBatch    []stream.Event // replay decode scratch

	// admit is the ingest admission controller (nil: no budgets
	// configured). panics counts HTTP handler panics recovered by the
	// middleware in handlers.go.
	admit  *admit.Controller
	panics atomic.Int64
}

// ReplanCounts breaks plan swaps down by what triggered them. Degraded
// counts swaps that could not export the old pipeline's state (a failed
// shard) and fell back to a fresh epoch at the horizon — those swaps
// skip straddling windows instead of migrating them, so a non-zero
// count means the zero-gap guarantee was waived for visible reasons.
type ReplanCounts struct {
	Register   int64 `json:"register"`
	Unregister int64 `json:"unregister"`
	Adaptive   int64 `json:"adaptive"`
	Manual     int64 `json:"manual"`
	Degraded   int64 `json:"degraded,omitempty"`
}

// New creates an idle server; queries and events arrive via the API.
func New(cfg Config) *Server {
	if cfg.ResultBuffer <= 0 {
		cfg.ResultBuffer = 4096
	}
	if cfg.ReorderBound < 0 {
		cfg.ReorderBound = 0
	}
	if cfg.AdaptiveEpoch <= 0 {
		cfg.AdaptiveEpoch = 1024
	}
	if cfg.AdaptiveOverpay <= 1 {
		cfg.AdaptiveOverpay = 1.2
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxStreamSubs == 0 {
		cfg.MaxStreamSubs = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	s := &Server{cfg: cfg, queries: make(map[string]*registration)}
	s.workers = append([]string(nil), cfg.Workers...)
	if cfg.MaxInflightBytes > 0 || cfg.MaxSourceBytes > 0 {
		s.admit = admit.New(admit.Options{
			GlobalBytes: cfg.MaxInflightBytes,
			SourceBytes: cfg.MaxSourceBytes,
			MaxWait:     cfg.AdmitWait,
			RetryAfter:  cfg.RetryAfter,
		})
	}
	s.obs.start = -1
	return s
}

// Admission exposes the ingest admission controller (nil when no byte
// budgets are configured) for operators and tests.
func (s *Server) Admission() *admit.Controller { return s.admit }

// WindowInfo describes one window of a registered query.
type WindowInfo struct {
	Name  string `json:"name"`
	Range int64  `json:"range"`
	Slide int64  `json:"slide"`
}

// QueryInfo is the externally visible state of one registered query.
// Evicted counts delivered rows overwritten in the result ring before
// any reader consumed them (backpressure loss on the egress side);
// events discarded on ingest because no query was live are the server
// Stats' Dropped counter, a different failure with a different fix.
type QueryInfo struct {
	ID        string       `json:"id"`
	SQL       string       `json:"query"`
	Fn        string       `json:"fn"`
	Param     float64      `json:"param,omitempty"`
	Windows   []WindowInfo `json:"windows"`
	Delivered int64        `json:"delivered"`
	Evicted   int64        `json:"evicted"`
}

func (r *registration) info(fn agg.Fn, param float64) QueryInfo {
	qi := QueryInfo{ID: r.id, SQL: r.sql, Fn: fn.String()}
	if agg.SketchBacked(fn) {
		qi.Param = param
	}
	for _, nw := range r.q.Windows {
		qi.Windows = append(qi.Windows, WindowInfo{Name: nw.Name, Range: nw.W.Range, Slide: nw.W.Slide})
	}
	qi.Delivered, qi.Evicted = r.ring.counters()
	return qi
}

// Register parses and admits one query, re-planning the live set. An
// empty id is assigned automatically. All live queries must share the
// aggregate function (the multiquery joint-plan constraint); WHERE
// clauses and multi-aggregate SELECT lists are rejected because the
// combined plan runs every query over the same event stream.
func (s *Server) Register(id, sql string) (QueryInfo, error) {
	q, err := admitQuery(sql, s.cfg.ExactMedian)
	if err != nil {
		return QueryInfo{}, err
	}
	s.mu.Lock()
	qi, commit, err := s.registerLocked(id, sql, q)
	s.mu.Unlock()
	if err != nil {
		return QueryInfo{}, err
	}
	if _, err := s.awaitCommit(commit); err != nil {
		return QueryInfo{}, err
	}
	return qi, nil
}

func (s *Server) registerLocked(id, sql string, q *asaql.Query) (QueryInfo, *wal.Commit, error) {
	if s.closed {
		return QueryInfo{}, nil, ErrClosed
	}
	if err := s.walGateLocked(); err != nil {
		return QueryInfo{}, nil, err
	}
	if s.hasFn && q.Fn != s.fn {
		return QueryInfo{}, nil, fmt.Errorf("%w: live queries aggregate with %v, cannot mix in %v", ErrConflict, s.fn, q.Fn)
	}
	if s.hasFn && q.Param != s.param {
		// The joint plan finalizes every query from the same shared state
		// with one parameter; mixing φ/k values needs per-query finalize
		// fan-out the combined plan does not have.
		return QueryInfo{}, nil, fmt.Errorf("%w: live %v queries use parameter %v, cannot mix in %v",
			ErrConflict, s.fn, s.param, q.Param)
	}
	if id == "" {
		for {
			s.nextID++
			id = fmt.Sprintf("q%d", s.nextID)
			if _, taken := s.queries[id]; !taken {
				break
			}
		}
	} else if _, taken := s.queries[id]; taken {
		return QueryInfo{}, nil, fmt.Errorf("%w: query %q already registered", ErrConflict, id)
	}

	reg := &registration{id: id, sql: sql, q: q, ring: newRing(s.cfg.ResultBuffer)}
	s.queries[id] = reg
	prevFn, prevParam, prevHas := s.fn, s.param, s.hasFn
	s.fn, s.param, s.hasFn = q.Fn, q.Param, true
	hadPlan := s.pipe != nil
	if err := s.replan(); err != nil {
		delete(s.queries, id)
		s.fn, s.param, s.hasFn = prevFn, prevParam, prevHas
		return QueryInfo{}, nil, err
	}
	if hadPlan {
		// The counters report plan *swaps*; the first registration builds
		// the initial plan with nothing to swap out.
		s.replans.Register++
	}
	// Logged with the assigned id, so replay re-registers it verbatim.
	commit, err := s.stageControlLocked(walControl{Op: "register", ID: id, SQL: sql})
	if err != nil {
		return QueryInfo{}, nil, err
	}
	return reg.info(s.fn, s.param), commit, nil
}

// admitQuery parses and validates one query under the server's
// admission rules. RestoreCheckpoint runs the same gauntlet, so a
// crafted checkpoint cannot smuggle in a query Register would reject
// (and then silently serve wrong results for).
func admitQuery(sql string, exactMedian bool) (*asaql.Query, error) {
	q, err := asaql.Parse(sql)
	if err != nil {
		return nil, err
	}
	if len(q.Aggregates) > 1 {
		return nil, fmt.Errorf("server: query has %d aggregate calls; register one query per aggregate", len(q.Aggregates))
	}
	if len(q.Where) > 0 {
		return nil, fmt.Errorf("server: WHERE clauses are per-query filters and cannot share the joint plan; filter the stream upstream")
	}
	if q.Fn == agg.Median && !exactMedian {
		// Route MEDIAN through the mergeable quantile sketch at φ=0.5. The
		// rewrite happens at admission so the whole pipeline (plan, engine,
		// checkpoints) sees only the sketch-backed function; the stored SQL
		// is untouched, so checkpoint restore re-derives the same rewrite.
		q.Fn, q.Param = agg.Percentile, 0.5
		for i := range q.Aggregates {
			q.Aggregates[i].Fn, q.Aggregates[i].Param = agg.Percentile, 0.5
		}
	}
	if !agg.Mergeable(q.Fn) {
		if q.Fn == agg.Median {
			return nil, fmt.Errorf("server: exact MEDIAN is holistic and not supported by the serving engine (unset ExactMedian to approximate it as PERCENTILE(v, 0.5))")
		}
		return nil, fmt.Errorf("server: aggregate %v is holistic and not supported by the serving engine", q.Fn)
	}
	return q, nil
}

// Unregister removes a query and re-plans the remaining set. The query's
// result ring is closed; undelivered rows stay readable until then-open
// streams drain.
func (s *Server) Unregister(id string) error {
	s.mu.Lock()
	commit, err := s.unregisterLocked(id)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = s.awaitCommit(commit)
	return err
}

func (s *Server) unregisterLocked(id string) (*wal.Commit, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.walGateLocked(); err != nil {
		return nil, err
	}
	reg, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("%w: query %q", ErrNotFound, id)
	}
	delete(s.queries, id)
	if len(s.queries) == 0 {
		s.hasFn = false
		s.param = 0
	}
	if err := s.replan(); err != nil {
		// Re-planning a strict subset of a set that planned before cannot
		// fail; if it somehow does, readmit the query to stay consistent.
		s.queries[id] = reg
		s.hasFn = true
		return nil, err
	}
	s.replans.Unregister++
	reg.ring.closeRing()
	return s.stageControlLocked(walControl{Op: "unregister", ID: id})
}

// Replan re-optimizes the live query set in place, migrating all open
// window state exactly (no results are skipped or changed — only the
// sharing structure). eta > 0 additionally re-prices the cost model at
// that event rate before optimizing; eta = 0 keeps the current model.
// It exists for operators and demos; the Adaptive config does the same
// thing automatically from observed ingest statistics.
func (s *Server) Replan(eta int64) error {
	s.mu.Lock()
	commit, err := s.replanManualLocked(eta)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = s.awaitCommit(commit)
	return err
}

func (s *Server) replanManualLocked(eta int64) (*wal.Commit, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.walGateLocked(); err != nil {
		return nil, err
	}
	if len(s.queries) == 0 {
		return nil, fmt.Errorf("%w: no live queries to re-plan", ErrNotFound)
	}
	prev := s.planEta
	if eta > 0 {
		s.planEta = eta
	}
	if err := s.replan(); err != nil {
		s.planEta = prev
		return nil, err
	}
	s.replans.Manual++
	// Manual re-plans are external inputs and must be logged; adaptive
	// ones re-derive deterministically from the replayed batches.
	return s.stageControlLocked(walControl{Op: "replan", Eta: eta})
}

// replan rebuilds the execution pipeline for the current query set,
// migrating every open window instance whose window survives into the
// new plan (zero-gap handover; see the package comment). The new
// pipeline is constructed completely before the old one is torn down,
// so a failure leaves the server running on the previous plan. Pending
// out-of-order events and the sealed release horizon carry over through
// the reorder buffer's state snapshot. Callers hold s.mu.
func (s *Server) replan() error {
	var carried *reorder.State
	horizon := reorder.NoRelease
	if s.pipe != nil {
		st := s.pipe.buf.Snapshot()
		carried = &st
	} else if s.carry != nil {
		carried = s.carry
	}
	if carried != nil {
		horizon = carried.Released
	}
	var exports []*engine.Export
	degraded := false
	if s.pipe != nil && len(s.queries) > 0 {
		// Export the old plan's canonical open-instance state for the
		// handover. A failed shard has nothing consistent to export; the
		// swap then falls back to a fresh epoch at the horizon — the
		// pre-migration semantics, already the contract for failures —
		// and is counted as degraded so the waived zero-gap guarantee is
		// visible in /stats rather than indistinguishable from a clean
		// migration.
		if ex, err := s.pipe.runner.ExportCanonical(horizon); err == nil {
			exports = ex
		} else {
			degraded = true
		}
	}

	var np *pipeline
	migrated := 0
	if len(s.queries) > 0 {
		var err error
		np, migrated, err = s.buildPipeline(horizon, carried, nil, exports)
		if err != nil {
			return err
		}
	}
	if s.pipe != nil {
		s.teardown()
	}
	s.pipe = np
	if np != nil {
		s.carry = nil // the state lives in the pipeline again
	} else {
		s.carry = carried
	}
	s.migrated += int64(migrated)
	if degraded {
		s.replans.Degraded++
	}
	s.engineErr = nil
	s.epoch++
	return nil
}

// optimizeOptions is the optimizer configuration every (re)plan and
// checkpoint-restore must share: the plan is part of the engine state's
// identity, so it has to rebuild deterministically from cfg + planEta.
func (s *Server) optimizeOptions() core.Options {
	eta := s.planEta
	if eta < 1 {
		eta = 1
	}
	return core.Options{Factors: s.cfg.Factors, Model: cost.Model{Eta: eta}}
}

// buildPipeline assembles one epoch's stack for the current query set.
// carried restores the reorder buffer (pending events, sealed horizon).
// engineState, when non-nil, resumes the shard engines from a
// parallel.Runner snapshot; exports, when non-nil, migrates the
// previous plan's canonical open-instance state instead. freshFloor is
// the exposed-result floor for windows with no carried state (the
// release horizon). It returns the migrated-instance count. Callers
// hold s.mu.
func (s *Server) buildPipeline(freshFloor int64, carried *reorder.State, engineState []byte, exports []*engine.Export) (*pipeline, int, error) {
	ids := s.sortedIDs()
	qs := make([]multiquery.Query, 0, len(ids))
	for _, id := range ids {
		reg := s.queries[id]
		ws := make([]window.Window, 0, len(reg.q.Windows))
		for _, nw := range reg.q.Windows {
			ws = append(ws, nw.W)
		}
		qs = append(qs, multiquery.Query{ID: id, Windows: ws})
	}
	mp, err := multiquery.Optimize(qs, s.fn, s.optimizeOptions())
	if err != nil {
		return nil, 0, err
	}
	// The finalize parameter (φ / k) rides the combined plan down into
	// every shard engine; it is not part of the plan's fingerprint, so
	// state migrates unchanged across plans differing only in Param.
	mp.Combined.Param = s.param
	g := &gate{}
	rings := make(map[string]*ring, len(ids))
	for _, id := range ids {
		rings[id] = s.queries[id].ring
	}
	sink := routeSink(mp, g, rings)
	var runner execRunner
	migrated := 0
	if len(s.workers) > 0 {
		// Distributed tier: the same plan inputs go to every worker so
		// each shard rebuilds the identical plan, and the same state
		// forms (canonical exports, gob engine snapshots) carry across —
		// a checkpoint taken in-process restores onto workers and vice
		// versa. The migrated-instance count stays inside the workers'
		// imports and is not reported here.
		spec := router.Spec{
			Queries:         qs,
			Fn:              s.fn,
			Param:           s.param,
			Eta:             s.planEta,
			Factors:         s.cfg.Factors,
			Shards:          s.cfg.Shards,
			Workers:         append([]string(nil), s.workers...),
			FreshFloor:      freshFloor,
			Exports:         exports,
			Dial:            s.cfg.WorkerDial,
			CheckpointEvery: s.cfg.WorkerCheckpointEvery,
		}
		if spec.Shards <= 0 {
			// The parallel tier's default, applied here so a config that
			// leaves Shards unset keys events identically in both tiers.
			spec.Shards = runtime.GOMAXPROCS(0)
		}
		if engineState != nil {
			states, events, derr := router.DecodeSnapshot(engineState)
			if derr != nil {
				return nil, 0, derr
			}
			spec.Snapshots, spec.Events = states, events
			spec.Exports = nil
		}
		runner, err = router.New(spec, sink)
	} else if engineState != nil {
		runner, err = parallel.Restore(mp.Combined, sink, engineState)
	} else {
		runner, migrated, err = parallel.Migrate(mp.Combined, sink, s.cfg.Shards, exports, freshFloor)
	}
	if err != nil {
		return nil, 0, err
	}
	// The server barriers after every ingestChunk batch, so ordered
	// draining makes the cross-shard result order — and therefore ring
	// sequence numbers and the bytes of both stream encodings — a pure
	// function of the ingested events. The cross-codec equivalence test
	// and binary stream resume both lean on this.
	runner.SetOrderedDrain(true)
	var buf *reorder.Buffer
	if carried != nil {
		buf, err = reorder.NewFromState(runner, *carried, s.onLate)
	} else {
		buf, err = reorder.New(runner, s.cfg.ReorderBound, s.cfg.Policy, s.onLate)
	}
	if err != nil {
		g.muted.Store(true)
		runner.Close()
		return nil, 0, err
	}
	// The memory cap is deployment configuration, reapplied to every
	// epoch's buffer (carried state brings the drop accounting along,
	// not the cap itself).
	if s.cfg.ReorderCap > 0 {
		buf.SetCap(s.cfg.ReorderCap, s.cfg.ReorderCapPolicy)
	}
	return &pipeline{plan: mp, runner: runner, buf: buf, gate: g, rings: rings}, migrated, nil
}

// teardown discards the current pipeline: its flush of open window
// instances is muted (they either migrated to the next epoch or belong
// to queries that left). Callers hold s.mu.
func (s *Server) teardown() {
	s.pipe.gate.muted.Store(true)
	s.pipe.runner.Close()
	s.pipe = nil
}

// routeSink builds the epoch's result path: the multiquery batch
// routing sink tags whole same-window runs with their subscribers, the
// gate mutes the stream during teardown, and each subscriber's ring
// receives the run in one appendBatch. Epoch-boundary suppression needs
// no filtering here any more — the engine's per-node emit floors keep
// partial instances from ever being emitted.
func routeSink(mp *multiquery.Plan, g *gate, rings map[string]*ring) stream.Sink {
	return mp.BatchSink(func(rb multiquery.RoutedBatch) {
		if g.muted.Load() {
			return
		}
		for _, id := range rb.QueryIDs {
			if rg := rings[id]; rg != nil {
				rg.appendBatch(rb.Results)
			}
		}
	})
}

// onLate counts events beyond the reorder bound. It runs inside
// Buffer.Push, which the server only calls under s.mu.
func (s *Server) onLate(stream.Event) { s.late++ }

// IngestStatus reports the outcome of one ingest call. Durable is true
// only when the batch's WAL record was fsynced before the ack (a
// durable server under the every policy); false means the batch is
// accepted in memory — and, on a durable server with a lax fsync
// policy, written but not yet synced.
type IngestStatus struct {
	Accepted int   `json:"accepted"`
	Dropped  int   `json:"dropped"` // discarded: no live queries
	Late     int64 `json:"late"`    // cumulative, server lifetime
	Buffered int   `json:"buffered"`
	Epoch    int64 `json:"epoch"`
	Durable  bool  `json:"durable"`
}

// Ingest pushes one batch of events into the pipeline. Events may be out
// of order up to the configured bound; negative timestamps are rejected.
// Batches from concurrent clients serialize; disorder across them is
// tolerated like any other disorder. On return, every result the batch
// completed is visible to readers (the runner is barriered), and on a
// durable server the batch's WAL record has been committed per the
// fsync policy — the commit wait happens after the ingest lock is
// released, so concurrent clients' records coalesce into one fsync.
func (s *Server) Ingest(events []stream.Event) (IngestStatus, error) {
	for i := range events {
		if events[i].Time < 0 {
			return IngestStatus{}, fmt.Errorf("server: event %d has negative time %d", i, events[i].Time)
		}
	}
	s.mu.Lock()
	st, commit, err := s.ingestLocked(events)
	s.mu.Unlock()
	if err != nil {
		return st, err
	}
	// Only fsync=every holds the ack for the group commit. At interval
	// and off the ack is non-durable by contract — durability arrives
	// with the background ticker — so blocking on the buffered segment
	// write would couple ingest latency to disk writeback for nothing;
	// the record is already staged in order, and a write failure
	// fail-stops the next mutation through the WAL gate.
	if commit != nil && s.cfg.Fsync == wal.FsyncEvery {
		durable, err := s.awaitCommit(commit)
		if err != nil {
			return IngestStatus{}, err
		}
		st.Durable = durable
	}
	return st, nil
}

// ingestLocked is Ingest's under-lock body: stage the batch into the
// WAL (log order = application order), apply it, and hand the commit
// ticket back for the caller to await outside the lock.
func (s *Server) ingestLocked(events []stream.Event) (IngestStatus, *wal.Commit, error) {
	if s.closed {
		return IngestStatus{}, nil, ErrClosed
	}
	if s.engineErr != nil {
		return IngestStatus{}, nil, fmt.Errorf("%w: %v (re-register queries or restore a valid checkpoint)",
			ErrEngine, s.engineErr)
	}
	if err := s.walGateLocked(); err != nil {
		return IngestStatus{}, nil, err
	}
	commit, err := s.stageEventsLocked(events)
	if err != nil {
		return IngestStatus{}, nil, err
	}
	s.ingested += int64(len(events))
	st := IngestStatus{Accepted: len(events), Epoch: s.epoch, Late: s.late}
	if s.pipe == nil {
		s.dropped += int64(len(events))
		st.Accepted = 0
		st.Dropped = len(events)
		s.maybeSnapshotLocked()
		return st, commit, nil
	}
	sealed := s.pipe.buf.Released()
	s.pipe.buf.Push(events)
	// Broadcast the release horizon as a watermark so shards whose keys
	// went quiet still fire their completed windows, then sync so every
	// completed result is in its ring before we return.
	if rel := s.pipe.buf.Released(); rel > reorder.NoRelease {
		s.pipe.runner.Advance(rel)
	}
	s.pipe.runner.Barrier()
	if err := s.pipe.runner.Err(); err != nil {
		return IngestStatus{}, commit, s.poisonLocked(err)
	}
	if s.cfg.Adaptive {
		// The pipeline is barriered and healthy: a clean point to fold
		// the batch into the observation window and, at epoch boundaries,
		// re-evaluate the plan under the observed workload (which may
		// swap the pipeline in place — state migrates, results continue).
		s.observe(events, sealed)
	}
	st.Late = s.late
	st.Buffered = s.pipe.buf.Buffered()
	st.Epoch = s.epoch
	s.maybeSnapshotLocked()
	return st, commit, nil
}

// poisonLocked tears the pipeline down after the runner reported a
// poisoned shard. A poisoned shard means the epoch's output is
// incomplete and its state unusable; tear the pipeline down rather
// than keep serving wrong answers, and report the failure
// persistently. Only the engine is compromised: the reorder buffer's
// sealed horizon is still sound, and carrying it keeps the next epoch
// (after re-registration) from delivering partial straddling windows
// as exact. Callers hold s.mu with a live pipeline.
func (s *Server) poisonLocked(err error) error {
	carried := s.pipe.buf.Snapshot()
	s.teardown()
	s.carry = &carried
	s.engineErr = err
	return fmt.Errorf("%w: %v (pipeline reset; re-register queries or restore a valid checkpoint)",
		ErrEngine, err)
}

// distributedLocked gates the topology mutations: they only mean
// something on a server executing on workers. Callers hold s.mu.
func (s *Server) distributedLocked() error {
	if s.closed {
		return ErrClosed
	}
	if len(s.workers) == 0 {
		return fmt.Errorf("%w: server is not distributed (no workers configured)", ErrConflict)
	}
	return nil
}

// hasWorker reports whether addr is in the server's worker set.
func (s *Server) hasWorker(addr string) bool {
	for _, w := range s.workers {
		if w == addr {
			return true
		}
	}
	return false
}

// AddWorker admits a worker process at addr into the distributed
// topology, or revives one that previously died. The worker carries no
// shards until MoveShard (or a failover) places some; the address also
// joins the server's worker set so later re-plans and checkpoint
// restores rebuild onto it.
func (s *Server) AddWorker(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.distributedLocked(); err != nil {
		return err
	}
	if addr == "" {
		return errors.New("server: empty worker address")
	}
	if s.pipe != nil {
		if err := s.pipe.runner.(*router.Runner).AddWorker(addr); err != nil {
			return fmt.Errorf("%w: %v", ErrConflict, err)
		}
	} else if s.hasWorker(addr) {
		return fmt.Errorf("%w: worker %s already present", ErrConflict, addr)
	}
	if !s.hasWorker(addr) {
		s.workers = append(s.workers, addr)
	}
	return nil
}

// MoveShard reassigns one shard to the worker at addr through the
// zero-gap migration: the router barriers, exports the shard's
// canonical state at the horizon, transfers it, and the target resumes
// behind the same emit floors — the result stream continues exactly.
// Serializes with ingest on s.mu, so no batch is in flight mid-move.
func (s *Server) MoveShard(shard int, addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.distributedLocked(); err != nil {
		return err
	}
	if s.engineErr != nil {
		return fmt.Errorf("%w: %v (re-register queries or restore a valid checkpoint)", ErrEngine, s.engineErr)
	}
	if s.pipe == nil {
		return fmt.Errorf("%w: no live pipeline (register queries first)", ErrConflict)
	}
	rr := s.pipe.runner.(*router.Runner)
	err := rr.Rebalance(shard, addr)
	if perr := rr.Err(); perr != nil {
		return s.poisonLocked(perr)
	}
	if err != nil {
		// Keep the router's typed errors (e.g. ErrShardDown) reachable
		// through the HTTP-status sentinel.
		return fmt.Errorf("%w: %w", ErrConflict, err)
	}
	return nil
}

// DrainWorker migrates every shard off the worker at addr (each via
// the same zero-gap move as MoveShard) and retires it from the
// topology and the server's worker set, so later re-plans stop
// dialing it. The last live worker refuses to drain.
func (s *Server) DrainWorker(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.distributedLocked(); err != nil {
		return err
	}
	if s.engineErr != nil {
		return fmt.Errorf("%w: %v (re-register queries or restore a valid checkpoint)", ErrEngine, s.engineErr)
	}
	if !s.hasWorker(addr) {
		return fmt.Errorf("%w: worker %s", ErrNotFound, addr)
	}
	if s.pipe != nil {
		rr := s.pipe.runner.(*router.Runner)
		err := rr.Drain(addr)
		if perr := rr.Err(); perr != nil {
			return s.poisonLocked(perr)
		}
		if err != nil {
			return fmt.Errorf("%w: %w", ErrConflict, err)
		}
	} else if len(s.workers) == 1 {
		return fmt.Errorf("%w: cannot drain the last worker", ErrConflict)
	}
	kept := s.workers[:0]
	for _, w := range s.workers {
		if w != addr {
			kept = append(kept, w)
		}
	}
	s.workers = kept
	return nil
}

// TopologyNow reports the distributed topology (nil when the server is
// single-process or has no live pipeline).
func (s *Server) TopologyNow() *router.Topology {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pipe != nil {
		if rr, ok := s.pipe.runner.(*router.Runner); ok {
			t := rr.Topology()
			return &t
		}
	}
	return nil
}

// observe folds one ingested batch into the adaptive observation window
// and re-evaluates the plan when the window spans AdaptiveEpoch ticks.
// Events below sealed — the release horizon before the batch was pushed
// — were judged late by the reorder buffer and (under the drop policy)
// never executed, so they must not inflate the estimate: the plan
// should fit the traffic the engine actually processes. Callers hold
// s.mu and have barriered the pipeline.
func (s *Server) observe(events []stream.Event, sealed int64) {
	if len(events) == 0 {
		return
	}
	if s.obs.keys == nil {
		s.obs.keys = make(map[uint64]struct{})
	}
	epoch := s.cfg.AdaptiveEpoch
	for i := range events {
		t := events[i].Time
		if t < sealed {
			continue
		}
		if s.obs.start < 0 {
			s.obs.start, s.obs.last = t, t
		}
		if t > s.obs.last+epoch*adaptiveJumpGuard {
			// Time jump (a far-future flush event, a clock skip, a gap in
			// a replayed stream): close the window at its last dense tick
			// instead of letting one timestamp stretch the span and
			// dilute the rate estimate toward zero — one synthetic event
			// must not re-plan the server onto a low-η plan, and a
			// densely observed wide window must still count.
			if s.obs.last-s.obs.start+1 >= epoch {
				s.evaluateAdaptive()
			}
			s.resetObs()
			s.obs.start, s.obs.last = t, t
		}
		if t > s.obs.last {
			s.obs.last = t
		}
		s.obs.keys[events[i].Key] = struct{}{}
		s.obs.events++
	}
	if s.obs.last-s.obs.start+1 >= epoch {
		s.evaluateAdaptive()
		s.resetObs()
	}
}

// resetObs clears the adaptive observation window for its next span.
func (s *Server) resetObs() {
	s.obs.events = 0
	s.obs.start = -1
	s.obs.last = 0
	if len(s.obs.keys) > obsKeysRetain {
		// Go maps never shrink: one high-cardinality burst must not pin
		// its bucket array for the server's lifetime (the observation
		// counterpart of the executors' egressRetain rule).
		s.obs.keys = make(map[uint64]struct{})
	} else {
		clear(s.obs.keys)
	}
}

// obsKeysRetain bounds the retained capacity of the adaptive
// observation window's key set, in distinct keys.
const obsKeysRetain = 1 << 16

// adaptiveJumpGuard is the factor by which an event may outrun the
// observation window's newest tick (in AdaptiveEpoch units) before it
// is judged a time jump that closes the window rather than the stream's
// own pace widening it.
const adaptiveJumpGuard = 8

// evaluateAdaptive re-prices the running plan under the observed
// per-key event rate and re-plans in place when the cost model finds a
// structurally better plan by at least the configured overpay factor.
// The estimate follows Observation 1's unit: aggregation is per key, so
// the rate that prices a raw-reading window is events per tick per
// active key — a cardinality shift moves it as much as a rate shift.
func (s *Server) evaluateAdaptive() {
	ticks := s.obs.last - s.obs.start + 1
	keys := len(s.obs.keys)
	if ticks <= 0 || keys == 0 {
		return
	}
	// Float arithmetic: a single far-future event (the documented flush
	// idiom) makes ticks enormous, and keys·ticks must neither overflow
	// nor panic — it just waters the estimate down toward the clamp.
	eta := int64(math.Round(float64(s.obs.events) / (float64(ticks) * float64(keys))))
	if eta < 1 {
		eta = 1
	}
	s.lastEta = eta
	s.lastKeys = keys
	cur := s.planEta
	if cur < 1 {
		cur = 1
	}
	if eta == cur {
		s.lastOverpay = 1
		return
	}
	adv, err := s.advise(eta)
	if err != nil {
		return
	}
	s.lastOverpay = adv.Overpay()
	if !adv.Reoptimize || adv.Overpay() < s.cfg.AdaptiveOverpay {
		return
	}
	prev := s.planEta
	s.planEta = eta
	if err := s.replan(); err != nil {
		s.planEta = prev
		return
	}
	s.replans.Adaptive++
}

// advise re-runs the optimizer under eta and compares it against the
// deployed plan's structure re-priced at the same rate.
func (s *Server) advise(eta int64) (adaptive.Advice, error) {
	if s.pipe == nil {
		return adaptive.Advice{}, fmt.Errorf("server: no deployed plan")
	}
	adv, err := adaptive.NewAdvisor(s.pipe.plan.Union, s.fn, s.optimizeOptions(), s.pipe.plan.Optimization)
	if err != nil {
		return adaptive.Advice{}, err
	}
	return adv.Evaluate(eta)
}

// Queries lists the live queries, sorted by ID.
func (s *Server) Queries() []QueryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueryInfo, 0, len(s.queries))
	for _, reg := range s.queries {
		out = append(out, reg.info(s.fn, s.param))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Query returns one query's state.
func (s *Server) Query(id string) (QueryInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, ok := s.queries[id]
	if !ok {
		return QueryInfo{}, fmt.Errorf("%w: query %q", ErrNotFound, id)
	}
	return reg.info(s.fn, s.param), nil
}

// Results returns up to limit result rows of query id with sequence
// numbers above after (limit <= 0 means all buffered), plus the number
// of requested rows already evicted from the ring.
func (s *Server) Results(id string, after int64, limit int) ([]ResultRow, int64, error) {
	rg, err := s.ringOf(id)
	if err != nil {
		return nil, 0, err
	}
	rows, missed := rg.readAfter(after, limit)
	return rows, missed, nil
}

// ringOf resolves a query's ring under the lock; reads then proceed
// without it.
func (s *Server) ringOf(id string) (*ring, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("%w: query %q", ErrNotFound, id)
	}
	return reg.ring, nil
}

// Stats is the server-wide state summary. Dropped and Evicted report
// two different losses: Dropped counts events discarded on ingest
// because no query was live (nothing existed to compute), Evicted sums
// result rows overwritten in per-query rings before a reader consumed
// them (results computed but not picked up in time). Earlier versions
// folded both stories into one number.
type Stats struct {
	Queries      int     `json:"queries"`
	Epoch        int64   `json:"epoch"`
	Fn           string  `json:"fn,omitempty"`
	Param        float64 `json:"param,omitempty"`
	Shards       int     `json:"shards"`
	Ingested     int64   `json:"ingested"`
	Dropped      int64   `json:"dropped"`
	Evicted      int64   `json:"evicted"`
	Late         int64   `json:"late"`
	Buffered     int     `json:"buffered"`
	Released     int64   `json:"released"`
	EngineEvents int64   `json:"engine_events"`
	Updates      int64   `json:"engine_updates"`
	CombinedCost string  `json:"combined_cost,omitempty"`
	SeparateCost string  `json:"separate_cost,omitempty"`
	Error        string  `json:"error,omitempty"` // persistent pipeline failure, if any

	// Re-planning and migration bookkeeping. Replans breaks plan swaps
	// down by trigger; Migrated counts window instances handed over
	// exactly across swaps; Eta is the cost-model event rate the running
	// plan was optimized under.
	Replans  ReplanCounts `json:"replans"`
	Migrated int64        `json:"migrated_instances"`
	Eta      int64        `json:"eta,omitempty"`

	// Adaptive observation state (present when Config.Adaptive): the
	// last evaluated per-key event rate, the active key cardinality it
	// was computed over, and how far the deployed plan overpaid the
	// observed optimum (1.0 = optimal) at the last evaluation.
	Adaptive    bool    `json:"adaptive,omitempty"`
	ObservedEta int64   `json:"observed_eta,omitempty"`
	ActiveKeys  int     `json:"active_keys,omitempty"`
	Overpay     float64 `json:"overpay,omitempty"`

	// Durability state (present when Config.Durable). WALLag is the
	// record count the newest snapshot does not cover — the replay debt
	// a crash right now would incur; a lag stuck high means snapshot
	// writes are failing (see Error fields) or SnapshotEvery is 0 and
	// nobody POSTs /checkpoint.
	Durable            bool   `json:"durable,omitempty"`
	WALAppended        int64  `json:"wal_appended,omitempty"`
	WALFsyncs          int64  `json:"wal_fsyncs,omitempty"`
	WALLag             int64  `json:"wal_lag,omitempty"`
	LastSnapshotOffset int64  `json:"last_snapshot_offset,omitempty"`
	WALError           string `json:"wal_error,omitempty"`      // sticky commit failure
	SnapshotError      string `json:"snapshot_error,omitempty"` // last async write failure

	// Overload-protection telemetry. The admission counters are present
	// when byte budgets are configured; the cap counters when the
	// reorder buffer is bounded. Degraded mirrors /readyz: the durable
	// log fail-stopped and mutations shed while reads keep serving.
	Degraded           bool  `json:"degraded,omitempty"`
	Panics             int64 `json:"panics,omitempty"`
	AdmitShed          int64 `json:"admit_shed,omitempty"`
	AdmitWaits         int64 `json:"admit_waits,omitempty"`
	AdmitInflightBytes int64 `json:"admit_inflight_bytes,omitempty"`
	AdmitPeakBytes     int64 `json:"admit_peak_bytes,omitempty"`
	ReorderCapDropped  int64 `json:"reorder_cap_dropped,omitempty"`
	ReorderCapReleased int64 `json:"reorder_cap_released,omitempty"`
	EgressPeakRows     int64 `json:"egress_peak_rows,omitempty"`
	WALRetries         int64 `json:"wal_retries,omitempty"`
	WALStagedPeak      int64 `json:"wal_staged_peak,omitempty"`

	// Distributed topology (present when the server runs on workers):
	// per-worker liveness and shard placement, plus the degradation
	// counters — shards shed after losing their last placement, events
	// dropped for shed shards, transparent failovers, and explicit
	// rebalances (see router.Topology).
	Topology *router.Topology `json:"topology,omitempty"`
}

// StatsNow reports the current server state. The engine-update counter
// is read after a barrier, so it is consistent with everything ingested
// so far.
func (s *Server) StatsNow() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Queries:     len(s.queries),
		Epoch:       s.epoch,
		Shards:      s.cfg.Shards,
		Ingested:    s.ingested,
		Dropped:     s.dropped,
		Late:        s.late,
		Replans:     s.replans,
		Migrated:    s.migrated,
		Adaptive:    s.cfg.Adaptive,
		ObservedEta: s.lastEta,
		ActiveKeys:  s.lastKeys,
		Overpay:     s.lastOverpay,
	}
	for _, reg := range s.queries {
		_, ev := reg.ring.counters()
		st.Evicted += ev
	}
	if s.planEta > 1 {
		st.Eta = s.planEta
	} else if s.hasFn {
		st.Eta = 1
	}
	if s.hasFn {
		st.Fn = s.fn.String()
		if agg.SketchBacked(s.fn) {
			st.Param = s.param
		}
	}
	if s.engineErr != nil {
		st.Error = s.engineErr.Error()
	}
	if s.wal != nil {
		ls := s.wal.Stats()
		st.Durable = true
		st.WALAppended = ls.Appended
		st.WALFsyncs = ls.Fsyncs
		st.WALLag = ls.NextOffset - s.lastSnapOffset
		st.LastSnapshotOffset = s.lastSnapOffset
		st.WALRetries = ls.Retries
		st.WALStagedPeak = ls.StagedPeak
		if s.walErr != nil {
			st.WALError = s.walErr.Error()
			st.Degraded = true
		}
		if s.snapErr != nil {
			st.SnapshotError = s.snapErr.Error()
		}
	}
	st.Panics = s.panics.Load()
	if s.admit != nil {
		as := s.admit.Stats()
		st.AdmitShed = as.Shed
		st.AdmitWaits = as.Waits
		st.AdmitInflightBytes = as.InFlight
		st.AdmitPeakBytes = as.Peak
	}
	if s.pipe != nil {
		st.ReorderCapDropped = s.pipe.buf.CapDropped()
		st.ReorderCapReleased = s.pipe.buf.CapReleased()
	} else if s.carry != nil {
		st.ReorderCapDropped = s.carry.CapDropped
		st.ReorderCapReleased = s.carry.CapReleased
	}
	if s.pipe != nil {
		s.pipe.runner.Barrier()
		st.Shards = s.pipe.runner.Shards()
		st.Buffered = s.pipe.buf.Buffered()
		if rel := s.pipe.buf.Released(); rel > reorder.NoRelease {
			st.Released = rel
		}
		st.EngineEvents = s.pipe.runner.Events()
		st.Updates = s.pipe.runner.TotalUpdates()
		st.CombinedCost = s.pipe.plan.CombinedCost
		st.SeparateCost = s.pipe.plan.SeparateCost
		st.EgressPeakRows = s.pipe.runner.EgressPeak()
		if rr, ok := s.pipe.runner.(*router.Runner); ok {
			topo := rr.Topology()
			st.Topology = &topo
		}
	}
	return st
}

// Health is the operator-facing liveness/readiness summary behind
// /healthz and /readyz. Ready is false while the server cannot accept
// mutations: closed, degraded (durable log fail-stopped), or running
// without an execution pipeline after an engine failure. Reads may
// still serve in the non-ready states short of closed.
type Health struct {
	Status string `json:"status"` // ok | degraded | closed
	Reason string `json:"reason,omitempty"`
	Ready  bool   `json:"ready"`
}

// Health reports the server's current health.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return Health{Status: "closed", Reason: "server closed"}
	case s.walErr != nil:
		return Health{Status: "degraded", Reason: fmt.Sprintf("durable log failed: %v (reads still serve; restart to recover)", s.walErr)}
	case s.engineErr != nil:
		return Health{Status: "degraded", Reason: fmt.Sprintf("engine failure: %v (re-register queries or restore a checkpoint)", s.engineErr)}
	}
	return Health{Status: "ok", Ready: true}
}

// Close tears down the pipeline and closes every result ring. Streaming
// readers drain and finish; subsequent mutations return ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.pipe != nil {
		s.teardown()
	}
	for _, reg := range s.queries {
		reg.ring.closeRing()
	}
}
