package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"factorwindows/internal/router"
	"factorwindows/internal/shardworker"
	"factorwindows/internal/stream"
)

// The distributed serving property: a server executing on fwworker
// processes must be client-indistinguishable from the single-process
// server — byte-identical NDJSON and binary result streams (sequence
// numbers included) for the same ingest script — across shard/worker
// geometries, elastic topology changes mid-stream, and worker death.

// startShardWorkers launches n in-process workers on loopback
// listeners and returns their dial addresses alongside the workers
// (for tests that kill one mid-stream).
func startShardWorkers(t *testing.T, n int) ([]string, []*shardworker.Worker) {
	t.Helper()
	addrs := make([]string, n)
	ws := make([]*shardworker.Worker, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w := shardworker.New()
		go w.Serve(ln)
		t.Cleanup(w.Close)
		addrs[i] = ln.Addr().String()
		ws[i] = w
	}
	return addrs, ws
}

// distBatches builds the deterministic ingest script: seeded batches of
// non-decreasing ticks over a small key space, closed by one far-future
// sentinel event that flushes every completed window.
func distBatches(seed int64, batches, per int) [][]stream.Event {
	rng := rand.New(rand.NewSource(seed))
	tick := int64(0)
	out := make([][]stream.Event, 0, batches+1)
	for b := 0; b < batches; b++ {
		batch := make([]stream.Event, per)
		for i := range batch {
			tick += int64(rng.Intn(3))
			batch[i] = stream.Event{Time: tick, Key: uint64(rng.Intn(6)), Value: float64(rng.Intn(100))}
		}
		out = append(out, batch)
	}
	out = append(out, []stream.Event{{Time: tick + (1 << 16), Key: 0, Value: 0}})
	return out
}

// Two queries sharing windows so the joint plan has factor structure.
var distQueries = []string{
	`SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(
		Window('16t', TumblingWindow(tick, 16)), Window('12s6', HoppingWindow(tick, 12, 6)))`,
	`SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(HoppingWindow(tick, 24, 8))`,
}

func registerDistQueries(t *testing.T, h http.Handler) {
	t.Helper()
	for i, q := range distQueries {
		rw := httptest.NewRecorder()
		req := httptest.NewRequest("POST", fmt.Sprintf("/queries?id=q%d", i+1), strings.NewReader(q))
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusCreated {
			t.Fatalf("register q%d: %d %s", i+1, rw.Code, rw.Body)
		}
	}
}

// playDist ingests batches[from:], invoking between (when non-nil)
// before each batch so tests can mutate topology or kill workers at
// fixed script offsets.
func playDist(t *testing.T, s *Server, batches [][]stream.Event, from int, between func(i int)) {
	t.Helper()
	for i := from; i < len(batches); i++ {
		if between != nil {
			between(i)
		}
		if _, err := s.Ingest(batches[i]); err != nil {
			t.Fatalf("ingest batch %d: %v", i, err)
		}
	}
}

// collectStreams closes the server and drains both result-stream
// encodings for every query. Byte equality of these maps is the
// distributed equivalence property: it covers row content, order, and
// the sequence numbers both encodings carry.
func collectStreams(t *testing.T, s *Server, h http.Handler) map[string][]byte {
	t.Helper()
	s.Close()
	out := map[string][]byte{}
	for i := range distQueries {
		id := fmt.Sprintf("q%d", i+1)
		out["ndjson:"+id] = drainStream(t, h, id, "")
		out["bin:"+id] = drainStream(t, h, id, ContentTypeFrame)
	}
	return out
}

// runDistScript runs the whole script on a fresh server and returns
// its drained streams.
func runDistScript(t *testing.T, cfg Config, batches [][]stream.Event, between func(i int)) map[string][]byte {
	t.Helper()
	s := New(cfg)
	defer s.Close()
	h := s.Handler()
	registerDistQueries(t, h)
	playDist(t, s, batches, 0, between)
	return collectStreams(t, s, h)
}

func assertSameStreams(t *testing.T, got, want map[string][]byte) {
	t.Helper()
	if len(want["ndjson:q1"]) == 0 || len(want["bin:q1"]) == 0 {
		t.Fatal("reference produced no results; the property is vacuous")
	}
	for key, wantBytes := range want {
		if !bytes.Equal(got[key], wantBytes) {
			t.Errorf("%s: distributed stream differs from reference (%d vs %d bytes)",
				key, len(got[key]), len(wantBytes))
		}
	}
}

// TestDistributedServerEquivalence is the headline property over the
// geometry grid: random window workload × shards 1/4/7 × workers 1/2/4,
// every distributed run byte-identical to the single-process server.
func TestDistributedServerEquivalence(t *testing.T) {
	batches := distBatches(17, 12, 150)
	for _, shards := range []int{1, 4, 7} {
		ref := runDistScript(t, Config{Shards: shards, ResultBuffer: 1 << 12}, batches, nil)
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				addrs, _ := startShardWorkers(t, workers)
				got := runDistScript(t, Config{
					Shards: shards, ResultBuffer: 1 << 12,
					Workers: addrs, WorkerCheckpointEvery: 4,
				}, batches, nil)
				assertSameStreams(t, got, ref)
			})
		}
	}
}

// TestDistributedServerScaleOutIn grows the topology mid-stream (admit
// a third worker, migrate two shards onto it) and later drains a
// worker — all through POST /topology — without perturbing one byte of
// the result streams.
func TestDistributedServerScaleOutIn(t *testing.T) {
	batches := distBatches(31, 16, 120)
	ref := runDistScript(t, Config{Shards: 6, ResultBuffer: 1 << 12}, batches, nil)

	addrs, _ := startShardWorkers(t, 3)
	s := New(Config{Shards: 6, ResultBuffer: 1 << 12, Workers: addrs[:2], WorkerCheckpointEvery: 3})
	defer s.Close()
	h := s.Handler()
	registerDistQueries(t, h)
	playDist(t, s, batches, 0, func(i int) {
		switch i {
		case 5:
			postTopology(t, h, fmt.Sprintf(`{"op":"add-worker","addr":%q}`, addrs[2]), http.StatusOK)
			postTopology(t, h, fmt.Sprintf(`{"op":"move","shard":0,"addr":%q}`, addrs[2]), http.StatusOK)
			postTopology(t, h, fmt.Sprintf(`{"op":"move","shard":3,"addr":%q}`, addrs[2]), http.StatusOK)
		case 12:
			postTopology(t, h, fmt.Sprintf(`{"op":"drain","addr":%q}`, addrs[0]), http.StatusOK)
		}
	})
	topo := s.TopologyNow()
	if topo == nil || topo.Rebalances < 2 {
		t.Fatalf("topology after scale-out/in: %+v", topo)
	}
	for _, w := range topo.Workers {
		if w.Addr == addrs[0] && (w.Live || len(w.Shards) != 0) {
			t.Fatalf("drained worker still placed: %+v", w)
		}
	}
	assertSameStreams(t, collectStreams(t, s, h), ref)
}

// TestDistributedServerWorkerKill severs one of three workers
// mid-stream: the router replays its journal onto the survivors and
// the client-visible streams stay byte-identical, with the failover
// visible in the topology counters.
func TestDistributedServerWorkerKill(t *testing.T) {
	batches := distBatches(23, 16, 120)
	ref := runDistScript(t, Config{Shards: 5, ResultBuffer: 1 << 12}, batches, nil)

	addrs, ws := startShardWorkers(t, 3)
	var topo *router.Topology
	s := New(Config{Shards: 5, ResultBuffer: 1 << 12, Workers: addrs, WorkerCheckpointEvery: 3})
	defer s.Close()
	h := s.Handler()
	registerDistQueries(t, h)
	playDist(t, s, batches, 0, func(i int) {
		if i == 9 {
			ws[1].Close()
		}
		if i == len(batches)-1 {
			topo = s.TopologyNow()
		}
	})
	if topo == nil || topo.Failovers == 0 {
		t.Fatalf("kill left no failover trace: %+v", topo)
	}
	if len(topo.ShedShards) != 0 || topo.ShedEvents != 0 {
		t.Fatalf("failover shed instead of recovering: %+v", topo)
	}
	live := 0
	for _, w := range topo.Workers {
		if w.Live {
			live++
		}
	}
	if live != 2 {
		t.Fatalf("%d live workers after killing one of three", live)
	}
	assertSameStreams(t, collectStreams(t, s, h), ref)
}

// TestDistributedCheckpointInterop proves checkpoint portability across
// execution tiers: a mid-stream checkpoint restores onto workers or
// in-process shards interchangeably, and both continuations emit
// byte-identical streams. (A distributed checkpoint restoring onto a
// single process is the scale-to-zero path; the reverse is scale-out
// of an existing deployment.)
func TestDistributedCheckpointInterop(t *testing.T) {
	batches := distBatches(41, 10, 150)
	const half = 5

	// checkpointAfterHalf plays the script prefix on a fresh server and
	// captures its checkpoint.
	checkpointAfterHalf := func(cfg Config) []byte {
		s := New(cfg)
		defer s.Close()
		registerDistQueries(t, s.Handler())
		playDist(t, s, batches[:half], 0, nil)
		cp, err := s.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		return cp
	}
	// continueFrom restores a checkpoint on a fresh server, plays the
	// script suffix, and drains the streams the new epoch produced.
	continueFrom := func(cfg Config, cp []byte) map[string][]byte {
		s := New(cfg)
		defer s.Close()
		h := s.Handler()
		if err := s.RestoreCheckpoint(cp); err != nil {
			t.Fatalf("restore: %v", err)
		}
		playDist(t, s, batches, half, nil)
		return collectStreams(t, s, h)
	}

	single := Config{Shards: 4, ResultBuffer: 1 << 12}
	cpSingle := checkpointAfterHalf(single)

	addrs, _ := startShardWorkers(t, 2)
	distributed := Config{Shards: 4, ResultBuffer: 1 << 12, Workers: addrs, WorkerCheckpointEvery: 2}
	cpDistributed := checkpointAfterHalf(distributed)

	want := continueFrom(single, cpSingle)
	assertSameStreams(t, continueFrom(distributed, cpSingle), want)
	assertSameStreams(t, continueFrom(single, cpDistributed), want)
	assertSameStreams(t, continueFrom(distributed, cpDistributed), want)
}

// postTopology POSTs one topology mutation and requires the given
// status.
func postTopology(t *testing.T, h http.Handler, body string, want int) []byte {
	t.Helper()
	rw := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/topology", strings.NewReader(body))
	h.ServeHTTP(rw, req)
	if rw.Code != want {
		t.Fatalf("POST /topology %s: %d %s (want %d)", body, rw.Code, rw.Body, want)
	}
	return rw.Body.Bytes()
}

// TestTopologyEndpointValidation pins the error surface: 409 on
// single-process servers, 400 on malformed ops, 409 for moves with no
// pipeline, and stats carrying the topology document only when
// distributed.
func TestTopologyEndpointValidation(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	h := s.Handler()
	postTopology(t, h, `{"op":"add-worker","addr":"127.0.0.1:1"}`, http.StatusConflict)
	postTopology(t, h, `{"op":"resize"}`, http.StatusBadRequest)
	postTopology(t, h, `not json`, http.StatusBadRequest)
	if st := s.StatsNow(); st.Topology != nil {
		t.Fatalf("single-process stats carry a topology: %+v", st.Topology)
	}

	addrs, _ := startShardWorkers(t, 1)
	d := New(Config{Shards: 2, Workers: addrs})
	defer d.Close()
	dh := d.Handler()
	// No queries yet → no pipeline: moves have nothing to move.
	postTopology(t, dh, `{"op":"move","shard":0,"addr":"x"}`, http.StatusConflict)
	postTopology(t, dh, `{"op":"move","addr":"x"}`, http.StatusBadRequest)
	// The last worker refuses to drain even without a pipeline.
	postTopology(t, dh, fmt.Sprintf(`{"op":"drain","addr":%q}`, addrs[0]), http.StatusConflict)
	postTopology(t, dh, `{"op":"drain","addr":"127.0.0.1:9"}`, http.StatusNotFound)

	registerDistQueries(t, dh)
	playDist(t, d, distBatches(7, 2, 50), 0, nil)
	if st := d.StatsNow(); st.Topology == nil || len(st.Topology.Workers) != 1 {
		t.Fatalf("distributed stats topology: %+v", st.Topology)
	}
	postTopology(t, dh, `{"op":"move","shard":99,"addr":"x"}`, http.StatusConflict)
}
