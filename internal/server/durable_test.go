package server

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"factorwindows/internal/stream"
	"factorwindows/internal/wal"
)

// durableConfig is the baseline durable server configuration the
// recovery tests share. FsyncEvery keeps every acked batch on disk, so
// an abandoned server models a crash precisely.
func durableConfig(dir string) Config {
	return Config{
		Shards:       3,
		Factors:      true,
		ReorderBound: 4,
		Durable:      true,
		WALDir:       dir,
		Fsync:        wal.FsyncEvery,
	}
}

func openDurable(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// allRows reads a query's full ring contents including sequence
// numbers — recovery promises byte-identical streams, so Seq matters.
func allRows(t *testing.T, s *Server, id string) []ResultRow {
	t.Helper()
	rows, _, err := s.Results(id, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// ingestScript drives the same batched ingest sequence into any server.
func ingestScript(t *testing.T, s *Server, events []stream.Event, batch int) {
	t.Helper()
	for i := 0; i < len(events); i += batch {
		end := min(i+batch, len(events))
		if _, err := s.Ingest(events[i:end]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableRecoveryCleanShutdown: shutdown seals the log and writes a
// final snapshot; reopening reproduces the exact ring contents —
// sequence numbers included — of an uninterrupted reference server.
func TestDurableRecoveryCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(2500, 5, 11)

	ref := New(Config{Shards: 3, Factors: true, ReorderBound: 4})
	defer ref.Close()
	s1 := openDurable(t, durableConfig(dir))
	for _, s := range []*Server{ref, s1} {
		if _, err := s.Register("a", demoQuery1); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Register("b", demoQuery2); err != nil {
			t.Fatal(err)
		}
		ingestScript(t, s, events, 300)
	}
	if err := s1.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	s2 := openDurable(t, durableConfig(dir))
	defer s2.Shutdown()
	for _, id := range []string{"a", "b"} {
		want, got := allRows(t, ref, id), allRows(t, s2, id)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %s: recovered rows differ (ref %d rows, recovered %d)", id, len(want), len(got))
		}
	}
	// And the recovered server keeps working: further ingest matches too.
	more := genEvents(500, 5, 12)
	for i := range more {
		more[i].Time += events[len(events)-1].Time
	}
	ingestScript(t, ref, more, 120)
	ingestScript(t, s2, more, 120)
	if want, got := allRows(t, ref, "a"), allRows(t, s2, "a"); !reflect.DeepEqual(want, got) {
		t.Fatal("post-recovery ingest diverged from reference")
	}
}

// TestDurableRecoveryAfterCrash abandons the server without any
// shutdown path (the WAL files are simply left as the last fsync put
// them — what SIGKILL leaves behind) and recovers from the log alone.
func TestDurableRecoveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(2000, 5, 21)

	ref := New(Config{Shards: 3, Factors: true, ReorderBound: 4})
	defer ref.Close()
	s1 := openDurable(t, durableConfig(dir))
	for _, s := range []*Server{ref, s1} {
		if _, err := s.Register("a", demoQuery1); err != nil {
			t.Fatal(err)
		}
		ingestScript(t, s, events, 250)
	}
	// Crash: close the engine only. The log is not sealed, no final
	// snapshot is written; recovery must come from replay.
	s1.Close()

	s2 := openDurable(t, durableConfig(dir))
	defer s2.Shutdown()
	if want, got := allRows(t, ref, "a"), allRows(t, s2, "a"); !reflect.DeepEqual(want, got) {
		t.Fatalf("crash recovery rows differ (ref %d, recovered %d)", len(want), len(got))
	}
	st := s2.StatsNow()
	if st.Ingested != int64(len(events)) {
		t.Fatalf("recovered Ingested = %d, want %d", st.Ingested, len(events))
	}
}

// TestDurableControlReplay pins registry mutations through the log:
// register/unregister/manual-replan all reappear after a crash.
func TestDurableControlReplay(t *testing.T) {
	dir := t.TempDir()
	s1 := openDurable(t, durableConfig(dir))
	if _, err := s1.Register("keep", demoQuery1); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Register("drop", demoQuery2); err != nil {
		t.Fatal(err)
	}
	events := genEvents(800, 5, 31)
	ingestScript(t, s1, events, 200)
	if err := s1.Unregister("drop"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Replan(64); err != nil {
		t.Fatal(err)
	}
	ingestScript(t, s1, events[:400], 100)
	s1.Close() // crash

	s2 := openDurable(t, durableConfig(dir))
	defer s2.Shutdown()
	qs := s2.Queries()
	if len(qs) != 1 || qs[0].ID != "keep" {
		t.Fatalf("recovered query set = %+v", qs)
	}
	st := s2.StatsNow()
	if st.Replans.Manual != 1 {
		t.Fatalf("recovered manual replans = %d, want 1", st.Replans.Manual)
	}
}

// TestDurableSnapshotAndTruncate: snapshots retire the covered log
// prefix yet recovery (snapshot + shorter tail) still matches the
// reference exactly.
func TestDurableSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.SnapshotEvery = 4         // snapshot every few batches
	cfg.WALSegmentBytes = 4 << 10 // rotate often so truncation bites
	events := genEvents(2400, 5, 41)

	ref := New(Config{Shards: 3, Factors: true, ReorderBound: 4})
	defer ref.Close()
	s1 := openDurable(t, cfg)
	for _, s := range []*Server{ref, s1} {
		if _, err := s.Register("a", demoQuery1); err != nil {
			t.Fatal(err)
		}
		ingestScript(t, s, events, 150)
	}
	waitSnapshotIdle(t, s1)
	st := s1.StatsNow()
	if st.LastSnapshotOffset == 0 {
		t.Fatal("auto-snapshot never landed")
	}
	s1.Close() // crash after snapshots truncated the log prefix

	s2 := openDurable(t, cfg)
	defer s2.Shutdown()
	if want, got := allRows(t, ref, "a"), allRows(t, s2, "a"); !reflect.DeepEqual(want, got) {
		t.Fatalf("snapshot+tail recovery rows differ (ref %d, recovered %d)", len(want), len(got))
	}
}

// waitSnapshotIdle waits for any in-flight async snapshot write.
func waitSnapshotIdle(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		busy := s.snapBusy
		s.mu.Unlock()
		if !busy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot write never finished")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDurableIngestAckAndStats pins the client-visible durability
// surface: the durable ack field, the /stats counters, and the manual
// Snapshot trigger.
func TestDurableIngestAckAndStats(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, durableConfig(dir))
	defer s.Shutdown()
	if _, err := s.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	st, err := s.Ingest(genEvents(100, 5, 51))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durable {
		t.Fatal("FsyncEvery ingest acked durable=false")
	}

	stats := s.StatsNow()
	if !stats.Durable || stats.WALAppended < 2 || stats.WALFsyncs < 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.WALLag == 0 {
		t.Fatal("WALLag zero before any snapshot")
	}

	off, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	waitSnapshotIdle(t, s)
	stats = s.StatsNow()
	if stats.LastSnapshotOffset != off || stats.WALLag != 0 {
		t.Fatalf("after snapshot: %+v (want last_snapshot_offset=%d, lag 0)", stats, off)
	}

	// Non-durable servers report 404-shaped errors from Snapshot.
	plain := New(Config{Shards: 1})
	defer plain.Close()
	if _, err := plain.Snapshot(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("plain Snapshot err = %v, want ErrNotFound", err)
	}
}

// TestDurableWALFailureFailStops: once a commit fails, every later
// mutation is rejected — the in-memory state has outrun what the log
// can replay, so serving on would silently void recovery.
func TestDurableWALFailureFailStops(t *testing.T) {
	dir := t.TempDir()
	ffs := newFailingFS()
	cfg := durableConfig(dir)
	cfg.WALFS = ffs
	s := openDurable(t, cfg)
	defer s.Close()
	if _, err := s.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(genEvents(50, 5, 61)); err != nil {
		t.Fatal(err)
	}

	ffs.fail.Store(true)
	if _, err := s.Ingest(genEvents(50, 5, 62)); err == nil {
		t.Fatal("ingest succeeded through a failed WAL commit")
	}
	// Fail-stopped: even after the filesystem heals, mutations stay
	// rejected until a restart re-runs recovery.
	ffs.fail.Store(false)
	if _, err := s.Ingest(genEvents(50, 5, 63)); err == nil {
		t.Fatal("ingest accepted on a fail-stopped durable server")
	}
	if _, err := s.Register("b", demoQuery2); err == nil {
		t.Fatal("register accepted on a fail-stopped durable server")
	}
	if st := s.StatsNow(); st.WALError == "" {
		t.Fatal("stats hide the sticky WAL error")
	}
}

// TestDurableRestoreBarrier: a client-driven restore rewrites the
// server wholesale, so the old log tail no longer describes the state.
// The barrier snapshot must make a crash right after the restore
// recover to the restored state, not a corrupted mix.
func TestDurableRestoreBarrier(t *testing.T) {
	// A plain server provides the checkpoint to restore.
	donor := New(Config{Shards: 3, Factors: true, ReorderBound: 4})
	defer donor.Close()
	if _, err := donor.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	donorEvents := genEvents(1200, 5, 71)
	ingestScript(t, donor, donorEvents, 300)
	cp, err := donor.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s1 := openDurable(t, durableConfig(dir))
	if _, err := s1.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	ingestScript(t, s1, genEvents(900, 5, 72), 300) // pre-restore history
	if err := s1.RestoreCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	post := genEvents(400, 5, 73)
	for i := range post {
		post[i].Time += donorEvents[len(donorEvents)-1].Time
	}
	ingestScript(t, s1, post, 100)
	s1.Close() // crash without a clean shutdown

	// Reference: a plain server restored from the same checkpoint and
	// fed the same post-restore events. Restores reset the result rings,
	// so both sides start the same fresh sequence space.
	ref := New(Config{Shards: 3, Factors: true, ReorderBound: 4})
	defer ref.Close()
	if err := ref.RestoreCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	ingestScript(t, ref, post, 100)

	s2 := openDurable(t, durableConfig(dir))
	defer s2.Shutdown()
	if want, got := allRows(t, ref, "a"), allRows(t, s2, "a"); !reflect.DeepEqual(want, got) {
		t.Fatalf("restore-barrier recovery differs (ref %d rows, recovered %d)", len(want), len(got))
	}
}
