// Server-level checkpointing: the registered query set, the reorder
// buffer's pending events and sealed horizon, and every shard engine's
// open window state — including per-window emit floors and in-flight
// migrated (frozen) state — in one blob. Restoring onto a fresh server
// resumes the stream exactly where the snapshot left it — the
// serving-layer counterpart of engine.Snapshot/Restore.
//
// Result rings are transient delivery buffers and are not checkpointed;
// restored queries start a fresh sequence space. The optimizer options
// (including the adaptive cost-model η) and shard count are part of the
// snapshot's identity: the plan is rebuilt from the query SQL and must
// fingerprint-match the shard engines, and key placement is a function
// of the shard count.

package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"factorwindows/internal/agg"
	"factorwindows/internal/reorder"
)

// checkpointVersion is the current codec generation: 3 since live plan
// migration (per-window exposed-result floors moved into the engine
// snapshots, and the cost-model η became part of the plan's identity).
// Version-2 blobs are columnar-era checkpoints whose epoch floor lives
// in MinStart; version-0 blobs are boxed-era (v1) checkpoints — gob
// leaves the missing fields zero — and both stay restorable: the engine
// codec migrates their state transparently and the restore path
// re-applies MinStart as a floor on every window.
const checkpointVersion = 3

// checkpoint is the gob-serialized server state.
type checkpoint struct {
	Version int
	Queries []checkpointQuery // sorted by ID
	NextID  int64
	Fn      agg.Fn
	HasFn   bool
	Factors bool
	// Param is the live set's finalize parameter (φ for PERCENTILE, k
	// for TOPK). Gob-optional: pre-sketch checkpoints omit it and decode
	// to 0, which is exactly the parameter their exact functions carry.
	Param    float64
	PlanEta  int64 // cost-model η the plan was optimized under (0: default)
	Epoch    int64
	Ingested int64
	Dropped  int64
	Late     int64
	HasPipe  bool
	HasCarry bool // Reorder holds a carried horizon but no engine state
	// MinStart carries the pre-v3 epoch floor: restoring a v1/v2 blob
	// re-imposes it on every window. v3 blobs restore their per-window
	// floors from the engine snapshot instead and fill this field with
	// the release horizon purely as a diagnostic (older builds reject
	// version 3 outright, so nothing downlevel ever reads it).
	MinStart int64
	Reorder  reorder.State
	Engine   []byte // parallel.Runner snapshot (embeds the shard count)
}

type checkpointQuery struct {
	ID  string
	SQL string
}

// Checkpoint serializes the server's full streaming state. It is
// consistent at ingest-batch boundaries: the pipeline is barriered and
// no batch is in flight while the snapshot is taken.
func (s *Server) Checkpoint() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

// checkpointLocked is Checkpoint's body for callers already holding
// s.mu — the durable snapshot capture embeds a checkpoint while the
// ingest lock pins the state to a record boundary.
func (s *Server) checkpointLocked() ([]byte, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if s.engineErr != nil {
		return nil, fmt.Errorf("%w: %v; nothing consistent to checkpoint", ErrEngine, s.engineErr)
	}
	cp := checkpoint{
		Version:  checkpointVersion,
		NextID:   s.nextID,
		Fn:       s.fn,
		HasFn:    s.hasFn,
		Factors:  s.cfg.Factors,
		Param:    s.param,
		PlanEta:  s.planEta,
		Epoch:    s.epoch,
		Ingested: s.ingested,
		Dropped:  s.dropped,
		Late:     s.late,
	}
	for _, qi := range s.sortedIDs() {
		cp.Queries = append(cp.Queries, checkpointQuery{ID: qi, SQL: s.queries[qi].sql})
	}
	switch {
	case s.pipe != nil:
		cp.HasPipe = true
		cp.MinStart = s.pipe.buf.Released()
		cp.Reorder = s.pipe.buf.Snapshot()
		eng, err := s.pipe.runner.Snapshot()
		if err != nil {
			return nil, err
		}
		cp.Engine = eng
	case s.carry != nil:
		// No pipeline, but the sealed horizon (and pending events) of the
		// last one must survive the round-trip.
		cp.HasCarry = true
		cp.Reorder = *s.carry
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return nil, fmt.Errorf("server: encoding checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreCheckpoint replaces the server's state with a previously taken
// checkpoint: queries are re-registered from their SQL, the joint plan
// is rebuilt deterministically, and the shard engines resume their open
// window instances. The restoring server must run with the same Factors
// option as the one that checkpointed (the engine fingerprint check
// rejects a mismatched plan).
func (s *Server) RestoreCheckpoint(data []byte) error {
	var cp checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cp); err != nil {
		return fmt.Errorf("server: decoding checkpoint: %w", err)
	}
	if cp.Version != 0 && cp.Version != 2 && cp.Version != checkpointVersion {
		return fmt.Errorf("server: checkpoint version %d not supported (this build reads v1, v2 and v%d)",
			cp.Version, checkpointVersion)
	}
	if cp.Factors != s.cfg.Factors {
		return fmt.Errorf("%w: checkpoint taken with factors=%t, server runs factors=%t",
			ErrConflict, cp.Factors, s.cfg.Factors)
	}
	if (cp.HasPipe || cp.HasCarry) &&
		(cp.Reorder.Bound != s.cfg.ReorderBound || cp.Reorder.Policy != s.cfg.Policy) {
		// Silently adopting the checkpoint's disorder settings would
		// override the operator's flags for the server's remaining
		// lifetime with nothing surfacing the divergence.
		return fmt.Errorf("%w: checkpoint reorder bound/policy %d/%v, server runs %d/%v",
			ErrConflict, cp.Reorder.Bound, cp.Reorder.Policy, s.cfg.ReorderBound, s.cfg.Policy)
	}
	if len(cp.Queries) > 0 && !cp.HasFn {
		return fmt.Errorf("server: checkpoint has %d queries but no aggregate function", len(cp.Queries))
	}
	// Checkpoints arrive from clients: every query re-runs Register's
	// admission checks, and the whole set must agree on the aggregate.
	queries := make(map[string]*registration, len(cp.Queries))
	for _, cq := range cp.Queries {
		q, err := admitQuery(cq.SQL, s.cfg.ExactMedian)
		if err != nil {
			return fmt.Errorf("server: checkpointed query %q: %w", cq.ID, err)
		}
		if cq.ID == "" {
			return fmt.Errorf("server: checkpointed query with empty ID")
		}
		if _, dup := queries[cq.ID]; dup {
			return fmt.Errorf("server: checkpoint lists query %q twice", cq.ID)
		}
		if q.Fn != cp.Fn {
			return fmt.Errorf("server: checkpointed query %q aggregates with %v, checkpoint set uses %v",
				cq.ID, q.Fn, cp.Fn)
		}
		if q.Param != cp.Param {
			// The parameter is re-derived from the SQL; a blob whose header
			// disagrees was tampered with or written by a server holding
			// different rewrite rules — either way the sketch state inside
			// would be finalized under the wrong φ/k.
			return fmt.Errorf("server: checkpointed query %q uses parameter %v, checkpoint set uses %v",
				cq.ID, q.Param, cp.Param)
		}
		queries[cq.ID] = &registration{id: cq.ID, sql: cq.SQL, q: q, ring: newRing(s.cfg.ResultBuffer)}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.applyCheckpointLocked(&cp, queries)
	if errors.Is(err, ErrClosed) {
		return err
	}
	// The restored state replaced everything the log's earlier records
	// describe, successfully or (fresh-state fallback) partially; either
	// way a durable server must fence the log here — see
	// restoreBarrierLocked.
	if s.wal != nil && !s.walReplaying {
		if berr := s.restoreBarrierLocked(); berr != nil && err == nil {
			err = berr
		}
	}
	return err
}

// applyCheckpointLocked swaps the validated checkpoint state in.
// Callers hold s.mu.
func (s *Server) applyCheckpointLocked(cpp *checkpoint, queries map[string]*registration) error {
	cp := *cpp
	if s.closed {
		return ErrClosed
	}
	if s.pipe != nil {
		s.teardown()
	}
	for _, reg := range s.queries {
		reg.ring.closeRing()
	}
	s.queries = queries
	s.nextID = cp.NextID
	s.fn, s.param, s.hasFn = cp.Fn, cp.Param, cp.HasFn
	s.planEta = cp.PlanEta
	s.epoch = cp.Epoch
	s.ingested = cp.Ingested
	s.dropped = cp.Dropped
	s.late = cp.Late
	s.engineErr = nil
	s.carry = nil
	// The adaptive observation window belongs to the replaced stream
	// position: restoring to an earlier point with a stale obs.last
	// would otherwise freeze the window (no event ever advances it) and
	// silently disable adaptive re-planning.
	if s.obs.keys != nil {
		s.resetObs()
	}
	s.lastEta, s.lastKeys, s.lastOverpay = 0, 0, 0
	if !cp.HasPipe {
		if cp.HasCarry {
			carried := cp.Reorder
			s.carry = &carried
		}
		if len(s.queries) > 0 {
			// Snapshot of a failed-and-not-yet-rebuilt set cannot occur
			// (Checkpoint refuses); still, never leave live queries
			// without a pipeline.
			return s.replan()
		}
		return nil
	}
	np, _, err := s.buildPipeline(cp.Reorder.Released, &cp.Reorder, cp.Engine, nil)
	if err != nil {
		// The registry is already replaced; fall back to a fresh plan so
		// the server stays serviceable, surfacing the restore failure.
		// The checkpoint's reorder horizon still gates the fallback epoch
		// — without it, windows straddling the restore point would be
		// delivered with partial values. Pending events are carried only
		// if they respect the horizon (the engine blob being corrupt says
		// nothing about them; hostile ones would wedge every re-plan).
		carried := cp.Reorder
		for _, e := range carried.Pending {
			if e.Time < carried.Released {
				carried.Pending = nil
				break
			}
		}
		s.carry = &carried
		if rerr := s.replan(); rerr != nil {
			return fmt.Errorf("server: restoring engine state: %v; re-plan also failed: %w", err, rerr)
		}
		return fmt.Errorf("server: restoring engine state (resumed with fresh state): %w", err)
	}
	if cp.Version < checkpointVersion {
		// Pre-migration checkpoints kept the epoch floor in the serving
		// layer; re-impose it on every window. (v3 engine snapshots carry
		// per-window floors and must not be flattened to the horizon —
		// that would suppress the very straddlers migration preserves.)
		np.runner.RaiseEmitFloor(cp.MinStart)
	}
	s.pipe = np
	return nil
}

func (s *Server) sortedIDs() []string {
	ids := make([]string, 0, len(s.queries))
	for id := range s.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
