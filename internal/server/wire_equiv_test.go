package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"factorwindows/internal/stream"
	"factorwindows/internal/streamio"
	"factorwindows/internal/wire"
)

// equivCodec encodes one ingest batch in one supported Content-Type.
type equivCodec struct {
	name        string
	contentType string
	encode      func(*bytes.Buffer, []stream.Event)
}

var equivCodecs = []equivCodec{
	{"json", "application/json", func(b *bytes.Buffer, es []stream.Event) {
		evs := make([]jsonEvent, len(es))
		for i, e := range es {
			evs[i] = jsonEvent{Time: e.Time, Key: e.Key, Value: e.Value}
		}
		if err := json.NewEncoder(b).Encode(evs); err != nil {
			panic(err)
		}
	}},
	{"csv", "text/csv", func(b *bytes.Buffer, es []stream.Event) {
		if err := streamio.WriteCSV(b, es); err != nil {
			panic(err)
		}
	}},
	{"ndjson", "application/x-ndjson", func(b *bytes.Buffer, es []stream.Event) {
		if err := streamio.WriteJSONL(b, es); err != nil {
			panic(err)
		}
	}},
	{"binary", ContentTypeFrame, func(b *bytes.Buffer, es []stream.Event) {
		if err := streamio.WriteBinary(b, es); err != nil {
			panic(err)
		}
	}},
}

// TestCrossCodecEquivalence is the wire-path property test: the same
// event batch POSTed through every ingest codec must leave the server
// in exactly the same state — byte-identical NDJSON and binary result
// streams, and an identical /stats document. Codec choice is a client
// convenience; it must never leak into the results.
func TestCrossCodecEquivalence(t *testing.T) {
	// Values are multiples of 0.25 so every codec round-trips them
	// exactly (CSV and JSON print them with no precision loss).
	var events []stream.Event
	for tick := int64(0); tick < 200; tick++ {
		for k := uint64(0); k < 5; k++ {
			events = append(events, stream.Event{
				Time: tick, Key: k, Value: float64((tick*5+int64(k))%37) * 0.25,
			})
		}
	}
	queries := []string{
		"SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 16))",
		"SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(HoppingWindow(tick, 24, 8))",
	}
	for _, shards := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			type outcome struct {
				status      IngestStatus
				ndjson, bin map[string][]byte
				stats       []byte
			}
			run := func(c equivCodec) outcome {
				s := New(Config{Shards: shards, ResultBuffer: 1 << 12})
				defer s.Close()
				h := s.Handler()
				for i, q := range queries {
					rw := httptest.NewRecorder()
					req := httptest.NewRequest("POST", fmt.Sprintf("/queries?id=q%d", i+1), bytes.NewReader([]byte(q)))
					h.ServeHTTP(rw, req)
					if rw.Code != http.StatusCreated {
						t.Fatalf("%s: register q%d: %d %s", c.name, i+1, rw.Code, rw.Body)
					}
				}
				var body bytes.Buffer
				c.encode(&body, events)
				req := httptest.NewRequest("POST", "/ingest", &body)
				req.Header.Set("Content-Type", c.contentType)
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, req)
				if rw.Code != http.StatusOK {
					t.Fatalf("%s: ingest: %d %s", c.name, rw.Code, rw.Body)
				}
				var st IngestStatus
				if err := json.Unmarshal(rw.Body.Bytes(), &st); err != nil {
					t.Fatalf("%s: ingest status: %v", c.name, err)
				}
				statsRW := httptest.NewRecorder()
				h.ServeHTTP(statsRW, httptest.NewRequest("GET", "/stats", nil))
				s.Close() // close rings so the streams drain and end
				out := outcome{status: st, ndjson: map[string][]byte{}, bin: map[string][]byte{}, stats: statsRW.Body.Bytes()}
				for i := range queries {
					id := fmt.Sprintf("q%d", i+1)
					out.ndjson[id] = drainStream(t, h, id, "")
					out.bin[id] = drainStream(t, h, id, ContentTypeFrame)
				}
				return out
			}
			base := run(equivCodecs[0])
			for _, c := range equivCodecs[1:] {
				got := run(c)
				if got.status != base.status {
					t.Errorf("%s ingest status = %+v, json = %+v", c.name, got.status, base.status)
				}
				if !bytes.Equal(got.stats, base.stats) {
					t.Errorf("%s /stats = %s\njson /stats = %s", c.name, got.stats, base.stats)
				}
				for i := range queries {
					id := fmt.Sprintf("q%d", i+1)
					if !bytes.Equal(got.ndjson[id], base.ndjson[id]) {
						t.Errorf("%s %s NDJSON stream differs from json ingest (%d vs %d bytes)",
							c.name, id, len(got.ndjson[id]), len(base.ndjson[id]))
					}
					if !bytes.Equal(got.bin[id], base.bin[id]) {
						t.Errorf("%s %s binary stream differs from json ingest (%d vs %d bytes)",
							c.name, id, len(got.bin[id]), len(base.bin[id]))
					}
				}
				if len(base.ndjson["q1"]) == 0 || len(base.bin["q1"]) == 0 {
					t.Fatal("baseline produced no results; the property is vacuous")
				}
			}
			// The binary stream must decode to exactly the NDJSON rows.
			assertFramesMatchNDJSON(t, base.bin["q1"], base.ndjson["q1"])
		})
	}
}

// drainStream reads one query's whole (closed) result stream in the
// encoding selected by accept ("" = NDJSON).
func drainStream(t *testing.T, h http.Handler, id, accept string) []byte {
	t.Helper()
	req := httptest.NewRequest("GET", "/queries/"+id+"/stream?after=-1", nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("stream %s: %d %s", id, rw.Code, rw.Body)
	}
	return rw.Body.Bytes()
}

// assertFramesMatchNDJSON cross-decodes the two stream encodings: every
// binary frame row must equal the corresponding NDJSON row, sequence
// numbers reconstructed from the frame header.
func assertFramesMatchNDJSON(t *testing.T, frames, ndjson []byte) {
	t.Helper()
	type rowJSON struct {
		Seq   int64   `json:"seq"`
		Range int64   `json:"range"`
		Slide int64   `json:"slide"`
		Start int64   `json:"start"`
		End   int64   `json:"end"`
		Key   uint64  `json:"key"`
		Value float64 `json:"value"`
	}
	var want []rowJSON
	for line := range bytes.Lines(ndjson) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var r rowJSON
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("NDJSON row: %v", err)
		}
		want = append(want, r)
	}
	i := 0
	for len(frames) > 0 {
		f, rest, err := wire.Decode(frames)
		if err != nil {
			t.Fatalf("binary stream frame: %v", err)
		}
		frames = rest
		if f.Kind != wire.KindResults {
			t.Fatalf("binary stream carried kind %d", f.Kind)
		}
		for r := 0; r < f.Rows(); r++ {
			if i >= len(want) {
				t.Fatalf("binary stream has more rows than NDJSON (%d)", len(want))
			}
			seq, rng, slide, start, end, key, value := f.Result(r)
			got := rowJSON{Seq: seq, Range: rng, Slide: slide, Start: start, End: end, Key: key, Value: value}
			if got != want[i] {
				t.Fatalf("row %d: binary %+v != ndjson %+v", i, got, want[i])
			}
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("binary stream decoded %d rows, NDJSON has %d", i, len(want))
	}
}
