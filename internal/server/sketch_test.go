// Serving-layer coverage for the sketch-backed aggregates: admission,
// the MEDIAN rewrite knob, parameter plumbing, checkpoint and re-plan
// round-trips of sketch state, and the evicted/dropped split in /stats.
//
// Reference trick: at this test's scale no sketch ever compacts or
// evicts (well under K=200 values per window instance per key, and a
// value domain below the top-k capacity), so the sketch paths are
// bit-deterministic — the sharded server must equal a single-core
// engine run of the same plan exactly, whatever the merge history.
package server

import (
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"factorwindows/internal/asaql"
	"factorwindows/internal/engine"
	"factorwindows/internal/plan"
	"factorwindows/internal/stream"
)

const (
	pctQuery = `SELECT k, PERCENTILE(v, 0.9) FROM s GROUP BY k, Windows(
		Window('8t', TumblingWindow(tick, 8)), TumblingWindow(tick, 16))`
	distinctQuery = `SELECT k, COUNT(DISTINCT v) FROM s GROUP BY k, Windows(
		HoppingWindow(tick, 12, 6), TumblingWindow(tick, 24))`
	topkQuery   = `SELECT k, TOPK(v, 3) FROM s GROUP BY k, Windows(TumblingWindow(tick, 16))`
	medianQuery = `SELECT k, MEDIAN(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 8))`
)

// sketchReference runs one query stand-alone on the single-core engine
// with the sharing-free plan and the query's finalize parameter.
func sketchReference(t *testing.T, sql string, events []stream.Event, keep func(row) bool) []row {
	t.Helper()
	q, err := asaql.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	set, err := q.Set()
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.NewOriginal(set, q.Fn)
	if err != nil {
		t.Fatal(err)
	}
	p.Param = q.Param
	sink := &stream.CollectingSink{}
	if _, err := engine.Run(p, events, sink); err != nil {
		t.Fatal(err)
	}
	var out []row
	for _, r := range sink.Results {
		if rw := fromResult(r); keep(rw) {
			out = append(out, rw)
		}
	}
	sortRows(out)
	return out
}

// sparseEvents keeps per-instance counts far below every sketch
// threshold: values from a small domain, few events per key per window.
func sparseEvents(n, keys, domain int, seed int64) []stream.Event {
	r := rand.New(rand.NewSource(seed))
	events := make([]stream.Event, 0, n)
	tick := int64(0)
	for i := 0; i < n; i++ {
		tick += int64(r.Intn(3))
		events = append(events, stream.Event{
			Time: tick, Key: uint64(r.Intn(keys)), Value: float64(r.Intn(domain)),
		})
	}
	return events
}

func ingestAll(t *testing.T, s *Server, events []stream.Event) {
	t.Helper()
	for i := 0; i < len(events); i += 400 {
		end := min(i+400, len(events))
		if _, err := s.Ingest(events[i:end]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerSketchEndToEnd drives each sketch-backed function through
// the full serving stack — register, sharded ingest, result rings — and
// compares against the single-core engine.
func TestServerSketchEndToEnd(t *testing.T) {
	const flushTick = 1 << 20
	for name, sql := range map[string]string{
		"percentile": pctQuery, "distinct": distinctQuery, "topk": topkQuery,
	} {
		t.Run(name, func(t *testing.T) {
			s := New(Config{Shards: 4, Factors: true})
			defer s.Close()
			qi, err := s.Register("q", sql)
			if err != nil {
				t.Fatal(err)
			}
			if name == "percentile" && qi.Param != 0.9 {
				t.Fatalf("registered param = %v, want 0.9", qi.Param)
			}
			events := sparseEvents(2000, 5, 40, 11)
			events = append(events, stream.Event{Time: flushTick, Key: 0, Value: 0})
			ingestAll(t, s, events)
			complete := func(r row) bool { return r.end <= flushTick }
			want := sketchReference(t, sql, events, complete)
			got := serverRows(t, s, "q")
			if len(want) == 0 {
				t.Fatal("empty reference")
			}
			if !equalRows(got, want) {
				t.Errorf("server delivered %d rows, engine %d; outputs differ", len(got), len(want))
			}
		})
	}
}

// TestServerMedianRewrite pins the exactness knob: by default MEDIAN is
// admitted as sketch-backed PERCENTILE at φ=0.5 and answers match the
// engine's sketch path; with ExactMedian set it is rejected at
// admission — a typed plan-time error, never a runtime panic.
func TestServerMedianRewrite(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	qi, err := s.Register("m", medianQuery)
	if err != nil {
		t.Fatal(err)
	}
	if qi.Fn != "PERCENTILE" || qi.Param != 0.5 {
		t.Fatalf("rewritten query is %s(param=%v), want PERCENTILE(param=0.5)", qi.Fn, qi.Param)
	}
	const flushTick = 1 << 20
	events := sparseEvents(1200, 4, 50, 17)
	events = append(events, stream.Event{Time: flushTick, Key: 0, Value: 0})
	ingestAll(t, s, events)
	complete := func(r row) bool { return r.end <= flushTick }
	pctSQL := `SELECT k, PERCENTILE(v, 0.5) FROM s GROUP BY k, Windows(TumblingWindow(tick, 8))`
	want := sketchReference(t, pctSQL, events, complete)
	got := serverRows(t, s, "m")
	if len(want) == 0 {
		t.Fatal("empty reference")
	}
	if !equalRows(got, want) {
		t.Errorf("rewritten MEDIAN delivered %d rows, PERCENTILE(0.5) engine run %d; outputs differ",
			len(got), len(want))
	}

	exact := New(Config{ExactMedian: true})
	defer exact.Close()
	if _, err := exact.Register("m", medianQuery); err == nil {
		t.Fatal("ExactMedian server must reject MEDIAN")
	} else if !strings.Contains(err.Error(), "MEDIAN") {
		t.Fatalf("rejection %v does not name MEDIAN", err)
	}
}

// TestServerSketchParamConflict: the joint plan finalizes all queries
// from shared state with one parameter, so mixing φ values is a
// conflict, while re-registering the same parameter shares fine.
func TestServerSketchParamConflict(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, err := s.Register("a", pctQuery); err != nil {
		t.Fatal(err)
	}
	other := `SELECT k, PERCENTILE(v, 0.5) FROM s GROUP BY k, Windows(TumblingWindow(tick, 8))`
	if _, err := s.Register("b", other); !errors.Is(err, ErrConflict) {
		t.Fatalf("mixed φ registration = %v, want ErrConflict", err)
	}
	same := `SELECT k, PERCENTILE(v, 0.9) FROM s GROUP BY k, Windows(TumblingWindow(tick, 32))`
	if _, err := s.Register("b", same); err != nil {
		t.Fatalf("same-φ registration failed: %v", err)
	}
}

// TestServerSketchCheckpointAndReplan round-trips sketch state through
// both state paths: a checkpoint restored onto a fresh server, and an
// in-place manual re-plan (canonical export/import), each mid-window.
// The continuation must deliver exactly what an uninterrupted server
// delivers.
func TestServerSketchCheckpointAndReplan(t *testing.T) {
	const flushTick = 1 << 20
	events := sparseEvents(2000, 5, 40, 23)
	events = append(events, stream.Event{Time: flushTick, Key: 0, Value: 0})
	cut := len(events) / 2
	complete := func(r row) bool { return r.end <= flushTick }

	for name, sql := range map[string]string{
		"percentile": pctQuery, "distinct": distinctQuery, "topk": topkQuery,
	} {
		t.Run(name, func(t *testing.T) {
			want := sketchReference(t, sql, events, complete)
			if len(want) == 0 {
				t.Fatal("empty reference")
			}

			// Checkpoint mid-stream, restore onto a fresh server, finish.
			s1 := New(Config{Shards: 3, Factors: true})
			if _, err := s1.Register("q", sql); err != nil {
				t.Fatal(err)
			}
			ingestAll(t, s1, events[:cut])
			blob, err := s1.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			pre := serverRows(t, s1, "q")
			s1.Close()

			s2 := New(Config{Shards: 3, Factors: true})
			defer s2.Close()
			if err := s2.RestoreCheckpoint(blob); err != nil {
				t.Fatal(err)
			}
			ingestAll(t, s2, events[cut:])
			got := append(pre, serverRows(t, s2, "q")...)
			sortRows(got)
			if !equalRows(got, want) {
				t.Errorf("checkpoint run delivered %d rows, reference %d; outputs differ", len(got), len(want))
			}

			// Manual re-plan mid-stream: canonical sketch state must migrate.
			s3 := New(Config{Shards: 3, Factors: true})
			defer s3.Close()
			if _, err := s3.Register("q", sql); err != nil {
				t.Fatal(err)
			}
			ingestAll(t, s3, events[:cut])
			if err := s3.Replan(4); err != nil {
				t.Fatal(err)
			}
			ingestAll(t, s3, events[cut:])
			if got := serverRows(t, s3, "q"); !equalRows(got, want) {
				t.Errorf("re-planned run delivered %d rows, reference %d; outputs differ", len(got), len(want))
			}
		})
	}
}

// TestStatsSplitsEvictedFromDropped: events discarded for lack of a live
// query count as Dropped; result rows overwritten in a full ring count
// as Evicted — two different losses, reported separately.
func TestStatsSplitsEvictedFromDropped(t *testing.T) {
	s := New(Config{ResultBuffer: 4})
	defer s.Close()
	if _, err := s.Ingest([]stream.Event{{Time: 0, Key: 1, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if st := s.StatsNow(); st.Dropped != 1 || st.Evicted != 0 {
		t.Fatalf("after queryless ingest: dropped=%d evicted=%d, want 1/0", st.Dropped, st.Evicted)
	}
	sql := `SELECT k, SUM(v) FROM s GROUP BY k, Windows(TumblingWindow(tick, 1))`
	if _, err := s.Register("q", sql); err != nil {
		t.Fatal(err)
	}
	// A 4-row ring and one result per tick per key: 40 ticks overflow it.
	var events []stream.Event
	for tick := int64(0); tick < 40; tick++ {
		events = append(events, stream.Event{Time: tick, Key: 1, Value: 1})
	}
	ingestAll(t, s, events)
	st := s.StatsNow()
	if st.Evicted == 0 {
		t.Fatal("full ring produced no evictions")
	}
	if st.Dropped != 1 {
		t.Fatalf("ring evictions leaked into Dropped: %d", st.Dropped)
	}
	qi, err := s.Query("q")
	if err != nil {
		t.Fatal(err)
	}
	if qi.Evicted != st.Evicted {
		t.Fatalf("per-query evicted %d != stats evicted %d", qi.Evicted, st.Evicted)
	}
}

// TestResultsCursorRendersNaN pins the cursor-read wire path for
// under-filled TOPK windows: encoding/json rejects NaN outright —
// aborting the response body after the 200 header — so the handler must
// render it as null, exactly like the NDJSON stream path does.
func TestResultsCursorRendersNaN(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/queries?id=q", "text/plain", strings.NewReader(topkQuery))
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	// Key 1 tracks two values — fewer than k=3 — so its window finalizes
	// to NaN; the flush event fires it.
	ingestAll(t, s, []stream.Event{
		{Time: 0, Key: 1, Value: 1}, {Time: 1, Key: 1, Value: 2},
		{Time: 100, Key: 2, Value: 0},
	})
	resp, err = http.Get(ts.URL + "/queries/q/results?after=-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("cursor read: status %s, %d-byte body", resp.Status, len(body))
	}
	var decoded struct {
		Missed  int64 `json:"missed"`
		Next    int64 `json:"next"`
		Results []struct {
			Seq   int64    `json:"seq"`
			Key   uint64   `json:"key"`
			Value *float64 `json:"value"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("cursor body is not JSON: %v\n%s", err, body)
	}
	var sawNull bool
	for _, r := range decoded.Results {
		if r.Key == 1 && r.Value == nil {
			sawNull = true
		}
	}
	if !sawNull {
		t.Fatalf("no null TOPK row for the under-filled key in %s", body)
	}
	if decoded.Next != decoded.Results[len(decoded.Results)-1].Seq {
		t.Fatalf("next=%d does not match last seq", decoded.Next)
	}
}
