package server

import (
	"errors"
	"sync/atomic"

	"factorwindows/internal/wal"
)

// failingFS wraps the real filesystem behind a kill switch: once fail
// is set, every write and fsync errors, modeling a dead disk under a
// live durable server.
type failingFS struct {
	inner wal.FS
	fail  atomic.Bool
}

func newFailingFS() *failingFS { return &failingFS{inner: wal.OS{}} }

var errDiskDead = errors.New("injected disk failure")

type failingFile struct {
	wal.File
	fs *failingFS
}

func (f failingFile) Write(p []byte) (int, error) {
	if f.fs.fail.Load() {
		return 0, errDiskDead
	}
	return f.File.Write(p)
}

func (f failingFile) Sync() error {
	if f.fs.fail.Load() {
		return errDiskDead
	}
	return f.File.Sync()
}

func (f *failingFS) MkdirAll(path string) error { return f.inner.MkdirAll(path) }

func (f *failingFS) Create(path string) (wal.File, error) {
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return failingFile{File: file, fs: f}, nil
}

func (f *failingFS) OpenAppend(path string) (wal.File, error) {
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return failingFile{File: file, fs: f}, nil
}

func (f *failingFS) Open(path string) (wal.File, error) { return f.inner.Open(path) }

func (f *failingFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *failingFS) Rename(oldPath, newPath string) error {
	if f.fail.Load() {
		return errDiskDead
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *failingFS) Remove(path string) error { return f.inner.Remove(path) }

func (f *failingFS) Truncate(path string, size int64) error { return f.inner.Truncate(path, size) }

func (f *failingFS) Size(path string) (int64, error) { return f.inner.Size(path) }

func (f *failingFS) SyncDir(dir string) error {
	if f.fail.Load() {
		return errDiskDead
	}
	return f.inner.SyncDir(dir)
}
