package server

import (
	"sync"

	"factorwindows/internal/stream"
)

// ResultRow is one delivered window-aggregate result, tagged with a
// per-query sequence number so clients can resume reads with a cursor.
type ResultRow struct {
	Seq   int64   `json:"seq"`
	Range int64   `json:"range"`
	Slide int64   `json:"slide"`
	Start int64   `json:"start"`
	End   int64   `json:"end"`
	Key   uint64  `json:"key"`
	Value float64 `json:"value"`
}

// ring is one query's bounded result buffer: a fixed-capacity circular
// buffer with monotonically increasing sequence numbers. Writers are the
// execution shards (serialized by the parallel runner's sink lock, but a
// ring takes no dependency on that); readers are HTTP handlers. When the
// buffer is full the oldest rows are overwritten and counted as evicted
// (distinct from the server's "dropped" counter, which is events ingested
// with no live query) — result delivery must never block ingestion.
type ring struct {
	mu       sync.Mutex
	capacity int
	rows     []ResultRow
	head     int   // index of the oldest row
	firstSeq int64 // sequence number of rows[head]
	nextSeq  int64
	evicted  int64         // rows overwritten before any reader saw them
	wait     chan struct{} // closed on append, but only once fetched
	waited   bool          // a waiter fetched wait since its last rotation
	closed   bool
}

func newRing(capacity int) *ring {
	return &ring{capacity: capacity, wait: make(chan struct{})}
}

func (g *ring) append(res stream.Result) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.appendLocked(res)
	g.wakeLocked()
	g.mu.Unlock()
}

// appendBatch delivers one same-window run of rows under a single lock
// acquisition and a single waiter wakeup — the batched fire path lands
// here, so a 1000-key instance costs one lock, not a thousand.
func (g *ring) appendBatch(rs []stream.Result) {
	if len(rs) == 0 {
		return
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	for i := range rs {
		g.appendLocked(rs[i])
	}
	g.wakeLocked()
	g.mu.Unlock()
}

func (g *ring) appendLocked(res stream.Result) {
	row := ResultRow{
		Seq:   g.nextSeq,
		Range: res.W.Range,
		Slide: res.W.Slide,
		Start: res.Start,
		End:   res.End,
		Key:   res.Key,
		Value: res.Value,
	}
	g.nextSeq++
	if len(g.rows) < g.capacity {
		g.rows = append(g.rows, row)
	} else {
		g.rows[g.head] = row
		g.head = (g.head + 1) % g.capacity
		g.firstSeq++
		g.evicted++
	}
}

// wakeLocked rotates the wait channel only when someone may be parked
// on it — with no stream readers attached, appends stay allocation-free.
func (g *ring) wakeLocked() {
	if g.waited {
		close(g.wait)
		g.wait = make(chan struct{})
		g.waited = false
	}
}

// readAfter returns up to limit rows with Seq > after (limit <= 0 means
// all), plus the number of requested rows lost to eviction.
func (g *ring) readAfter(after int64, limit int) (rows []ResultRow, missed int64) {
	return g.readAfterInto(after, limit, nil)
}

// readAfterInto is readAfter appending into a caller-recycled buffer, so
// a long-lived stream reader polls without a per-poll slice allocation.
func (g *ring) readAfterInto(after int64, limit int, buf []ResultRow) (rows []ResultRow, missed int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	start := after + 1
	if start < g.firstSeq {
		missed = g.firstSeq - start
		start = g.firstSeq
	}
	n := g.nextSeq - start
	if n <= 0 {
		return buf, missed
	}
	if limit > 0 && n > int64(limit) {
		n = int64(limit)
	}
	if buf == nil {
		buf = make([]ResultRow, 0, n)
	}
	for i := int64(0); i < n; i++ {
		idx := (g.head + int(start-g.firstSeq+i)) % len(g.rows)
		buf = append(buf, g.rows[idx])
	}
	return buf, missed
}

// waitCh returns a channel closed on the next append or close. Fetch it
// before readAfter to avoid missing a wakeup.
func (g *ring) waitCh() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.waited = true
	return g.wait
}

func (g *ring) isClosed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

// closeRing wakes all waiters permanently; readers drain what remains.
// The wait channel stays closed, so every future waitCh is ready at once
// and append becomes a no-op.
func (g *ring) closeRing() {
	g.mu.Lock()
	if !g.closed {
		g.closed = true
		close(g.wait)
	}
	g.mu.Unlock()
}

func (g *ring) counters() (delivered, evicted int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nextSeq, g.evicted
}

// window reports the ring's live sequence span [firstSeq, nextSeq):
// cursors below firstSeq have been evicted. The stream listener uses it
// to detect stale resume cursors at subscribe time.
func (g *ring) window() (firstSeq, nextSeq int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstSeq, g.nextSeq
}

// ringState is a ring's exported delivery state, carried inside durable
// snapshots: crash recovery promises byte-identical result streams, and
// those bytes include sequence numbers and eviction positions.
type ringState struct {
	ID       string
	Rows     []ResultRow // oldest first
	FirstSeq int64
	NextSeq  int64
	Evicted  int64
}

// exportState copies the ring's buffered rows (oldest first) and
// sequence counters.
func (g *ring) exportState(id string) ringState {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := ringState{ID: id, FirstSeq: g.firstSeq, NextSeq: g.nextSeq, Evicted: g.evicted}
	n := len(g.rows)
	st.Rows = make([]ResultRow, 0, n)
	for i := 0; i < n; i++ {
		st.Rows = append(st.Rows, g.rows[(g.head+i)%n])
	}
	return st
}

// importState replaces the ring's contents with an exported state,
// trimming the oldest rows if the importing ring is smaller than the
// exporter's (a ResultBuffer change across a restart).
func (g *ring) importState(st ringState) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rows := st.Rows
	first := st.FirstSeq
	if len(rows) > g.capacity {
		cut := len(rows) - g.capacity
		rows = rows[cut:]
		first += int64(cut)
	}
	g.rows = append(g.rows[:0], rows...)
	g.head = 0
	g.firstSeq = first
	g.nextSeq = st.NextSeq
	g.evicted = st.Evicted
	g.wakeLocked()
}
