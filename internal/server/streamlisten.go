// Persistent streaming listener: one raw TCP connection multiplexes any
// number of query subscriptions as binary result frames, replacing
// long-poll re-requests for high-fan-out subscribers.

package server

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"factorwindows/internal/streamio"
	"factorwindows/internal/wire"
)

// streamWriteTimeout bounds one frame write; a subscriber that stops
// reading loses its connection instead of parking a goroutine forever.
const streamWriteTimeout = 30 * time.Second

// subOp is one client → server control line (NDJSON): subscribe a query
// under a client-chosen stream id, or unsubscribe that id. After is the
// per-query resume cursor (sequence numbers are durable across
// reconnects: resubscribe with the last sequence seen and delivery
// continues exactly where it stopped, minus anything the ring evicted).
type subOp struct {
	Op     string `json:"op"`
	Stream uint32 `json:"stream"`
	ID     string `json:"id"`
	After  int64  `json:"after"`
}

// subAck is the JSON payload of the control frame answering one subOp,
// or announcing a subscription's end of stream.
type subAck struct {
	Stream uint32 `json:"stream"`
	ID     string `json:"id,omitempty"`
	OK     bool   `json:"ok,omitempty"`
	EOF    bool   `json:"eof,omitempty"`
	Error  string `json:"error,omitempty"`
}

// StreamServer serves the persistent streaming protocol over raw TCP:
//
//	client → server  one JSON object per line —
//	    {"op":"subscribe","stream":1,"id":"q1","after":-1}
//	    {"op":"unsubscribe","stream":1}
//	server → client  binary frames (internal/wire) —
//	    control frames carrying subAck JSON (op acks, errors, EOF), and
//	    result frames tagged with the subscription's stream id, one per
//	    drained ring run, row 0's sequence number in the header.
//
// Stream ids are chosen by the client and scope every server frame to
// one subscription, so frames of many queries interleave on one
// connection without ambiguity. The server closes a subscription with
// an EOF control frame when its query is unregistered or the server
// shuts down; the connection itself stays usable.
type StreamServer struct {
	s *Server

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*streamConn]struct{}
	closed    bool
}

// NewStreamServer wraps s with the persistent streaming protocol; serve
// it on any number of listeners with Serve.
func NewStreamServer(s *Server) *StreamServer {
	return &StreamServer{
		s:         s,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*streamConn]struct{}),
	}
}

// Serve accepts connections on l until the listener fails or the
// StreamServer closes. It blocks; run it in a goroutine.
func (ss *StreamServer) Serve(l net.Listener) error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	ss.listeners[l] = struct{}{}
	ss.mu.Unlock()
	defer func() {
		ss.mu.Lock()
		delete(ss.listeners, l)
		ss.mu.Unlock()
		l.Close()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			ss.mu.Lock()
			closed := ss.closed
			ss.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sc := &streamConn{ss: ss, c: c, done: make(chan struct{}), subs: make(map[uint32]chan struct{})}
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			c.Close()
			return nil
		}
		ss.conns[sc] = struct{}{}
		ss.mu.Unlock()
		go sc.run()
	}
}

// Close stops accepting, severs every live connection, and leaves the
// underlying Server untouched.
func (ss *StreamServer) Close() {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	lns := make([]net.Listener, 0, len(ss.listeners))
	for l := range ss.listeners {
		lns = append(lns, l)
	}
	conns := make([]*streamConn, 0, len(ss.conns))
	for c := range ss.conns {
		conns = append(conns, c)
	}
	ss.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	for _, c := range conns {
		c.close()
	}
}

// streamConn is one client connection: a control-line reader plus one
// writer goroutine per live subscription, all frame writes serialized
// on wmu so frames never interleave mid-frame.
type streamConn struct {
	ss   *StreamServer
	c    net.Conn
	done chan struct{}

	wmu sync.Mutex // serializes frame writes

	mu     sync.Mutex // guards subs
	subs   map[uint32]chan struct{}
	closed bool
}

// run reads control lines until the client disconnects, then tears the
// connection's subscriptions down.
func (sc *streamConn) run() {
	defer sc.close()
	defer func() {
		sc.ss.mu.Lock()
		delete(sc.ss.conns, sc)
		sc.ss.mu.Unlock()
	}()
	scan, putScanBuf := streamio.NewLineScanner(sc.c)
	defer putScanBuf()
	for scan.Scan() {
		line := scan.Bytes()
		if len(line) == 0 {
			continue
		}
		var op subOp
		if err := json.Unmarshal(line, &op); err != nil {
			sc.ack(subAck{Error: fmt.Sprintf("bad control line: %v", err)})
			return
		}
		switch op.Op {
		case "subscribe":
			sc.subscribe(op)
		case "unsubscribe":
			sc.unsubscribe(op.Stream)
		default:
			sc.ack(subAck{Stream: op.Stream, Error: fmt.Sprintf("unknown op %q", op.Op)})
		}
	}
}

// subscribe resolves the query's ring and starts the subscription's
// writer; errors come back as control frames so one bad subscribe does
// not sever the other streams on the connection.
func (sc *streamConn) subscribe(op subOp) {
	rg, err := sc.ss.s.ringOf(op.ID)
	if err != nil {
		sc.ack(subAck{Stream: op.Stream, ID: op.ID, Error: err.Error()})
		return
	}
	stop := make(chan struct{})
	sc.mu.Lock()
	if _, taken := sc.subs[op.Stream]; taken {
		sc.mu.Unlock()
		sc.ack(subAck{Stream: op.Stream, ID: op.ID, Error: fmt.Sprintf("stream %d already subscribed", op.Stream)})
		return
	}
	sc.subs[op.Stream] = stop
	sc.mu.Unlock()
	sc.ack(subAck{Stream: op.Stream, ID: op.ID, OK: true})
	go sc.streamSub(op.Stream, rg, op.After, stop)
}

// unsubscribe stops one subscription; unknown ids ack with an error.
func (sc *streamConn) unsubscribe(streamID uint32) {
	sc.mu.Lock()
	stop, ok := sc.subs[streamID]
	if ok {
		delete(sc.subs, streamID)
	}
	sc.mu.Unlock()
	if !ok {
		sc.ack(subAck{Stream: streamID, Error: fmt.Sprintf("stream %d not subscribed", streamID)})
		return
	}
	close(stop)
	sc.ack(subAck{Stream: streamID, OK: true})
}

// streamSub is one subscription's writer loop: the persistent-stream
// counterpart of handleStream, with the drained runs framed under the
// subscription's stream id instead of NDJSON. Steady state is
// allocation-free per poll: pooled row staging, pooled encode buffer,
// one frame write per drained run.
func (sc *streamConn) streamSub(streamID uint32, rg *ring, after int64, stop chan struct{}) {
	rowsp := streamRowPool.Get().(*[]ResultRow)
	defer func() { *rowsp = (*rowsp)[:0]; streamRowPool.Put(rowsp) }()
	bufp := streamio.GetEncodeBuf()
	defer streamio.PutEncodeBuf(bufp)
	for {
		wake := rg.waitCh() // fetch before reading: no missed wakeups
		rows, _ := rg.readAfterInto(after, streamChunk, (*rowsp)[:0])
		*rowsp = rows
		if len(rows) > 0 {
			enc := wire.BeginResultFrame((*bufp)[:0], streamID, rows[0].Seq, len(rows))
			for i := range rows {
				enc.SetRow(i, rows[i].Range, rows[i].Slide, rows[i].Start, rows[i].End, rows[i].Key, rows[i].Value)
			}
			buf := enc.Bytes()
			*bufp = buf
			if err := sc.write(buf); err != nil {
				sc.close()
				return
			}
			after = rows[len(rows)-1].Seq
			continue
		}
		if rg.isClosed() {
			sc.ack(subAck{Stream: streamID, EOF: true})
			sc.dropSub(streamID)
			return
		}
		select {
		case <-stop:
			return
		case <-sc.done:
			return
		case <-wake:
		}
	}
}

// dropSub removes a subscription that ended on its own (ring closed).
func (sc *streamConn) dropSub(streamID uint32) {
	sc.mu.Lock()
	delete(sc.subs, streamID)
	sc.mu.Unlock()
}

// ack sends one control frame; write failures sever the connection.
func (sc *streamConn) ack(a subAck) {
	payload, err := json.Marshal(a)
	if err != nil {
		return
	}
	buf := wire.AppendControlFrame(nil, a.Stream, payload)
	if sc.write(buf) != nil {
		sc.close()
	}
}

// write sends one whole frame under the write lock with a deadline.
func (sc *streamConn) write(buf []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.c.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
	_, err := sc.c.Write(buf)
	return err
}

// close severs the connection and stops every subscription goroutine.
func (sc *streamConn) close() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	for id, stop := range sc.subs {
		close(stop)
		delete(sc.subs, id)
	}
	sc.mu.Unlock()
	close(sc.done)
	sc.c.Close()
}
