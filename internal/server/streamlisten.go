// Persistent streaming listener: one raw TCP connection multiplexes any
// number of query subscriptions as binary result frames, replacing
// long-poll re-requests for high-fan-out subscribers.

package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"factorwindows/internal/stream"
	"factorwindows/internal/streamio"
	"factorwindows/internal/wire"
)

// streamWriteTimeout bounds one frame write; a subscriber that stops
// reading loses its connection instead of parking a goroutine forever.
const streamWriteTimeout = 30 * time.Second

// Control-frame aux flags (wire.AppendControlFrameAux / Frame.Seq).
const (
	// ctrlAuxDurable marks an ingest ack whose WAL record was fsynced
	// before the ack — the binary counterpart of IngestStatus.Durable.
	ctrlAuxDurable int64 = 1 << 0
	// ctrlAuxGap marks a typed gap notice: rows before subAck.First were
	// evicted from the ring and will never be delivered. Sent instead of
	// silently resuming at the ring head, so a resuming client can tell
	// exactly-resumed from data-lost.
	ctrlAuxGap int64 = 1 << 1
	// ctrlAuxShed marks an ingest ack whose event frame was shed by
	// admission control (nothing was applied); the ack's Error carries
	// the Retry-After hint. The typed flag lets binary clients back off
	// without parsing the message text.
	ctrlAuxShed int64 = 1 << 2
)

// subOp is one client → server control line (NDJSON): subscribe a query
// under a client-chosen stream id, or unsubscribe that id. After is the
// per-query resume cursor (sequence numbers are durable across
// reconnects and crash recoveries: resubscribe with the last sequence
// seen and delivery continues exactly where it stopped; anything the
// ring evicted meanwhile is announced with a gap control frame).
type subOp struct {
	Op     string `json:"op"`
	Stream uint32 `json:"stream"`
	ID     string `json:"id"`
	After  int64  `json:"after"`
}

// subAck is the JSON payload of the control frame answering one subOp,
// announcing a subscription's end of stream, or (Gap set, with the
// ctrlAuxGap aux flag) reporting Missed evicted rows — delivery resumes
// at sequence First.
type subAck struct {
	Stream uint32 `json:"stream"`
	ID     string `json:"id,omitempty"`
	OK     bool   `json:"ok,omitempty"`
	EOF    bool   `json:"eof,omitempty"`
	Gap    bool   `json:"gap,omitempty"`
	Missed int64  `json:"missed,omitempty"`
	First  int64  `json:"first,omitempty"`
	Error  string `json:"error,omitempty"`
}

// ingestAck is the JSON payload answering one client event frame; the
// carrying control frame's aux word has ctrlAuxDurable set when the
// batch's WAL record was fsynced before the ack.
type ingestAck struct {
	Stream   uint32 `json:"stream"`
	Ingest   bool   `json:"ingest"`
	Accepted int    `json:"accepted"`
	Dropped  int    `json:"dropped"`
	Durable  bool   `json:"durable"`
	Error    string `json:"error,omitempty"`
}

// StreamServer serves the persistent streaming protocol over raw TCP:
//
//	client → server  one JSON object per line —
//	    {"op":"subscribe","stream":1,"id":"q1","after":-1}
//	    {"op":"unsubscribe","stream":1}
//	  or binary event frames (internal/wire), ingested like POST /ingest
//	server → client  binary frames (internal/wire) —
//	    control frames carrying subAck JSON (op acks, errors, EOF, gap
//	    notices) or ingestAck JSON (per event frame, with the durable
//	    aux flag), and result frames tagged with the subscription's
//	    stream id, one per drained ring run, row 0's sequence number in
//	    the header.
//
// The two client encodings share the connection unambiguously: a JSON
// line starts with '{' (0x7b, odd), while a frame starts with the low
// byte of its u32 length — header plus 8-byte column words, always ≡ 4
// (mod 8), never odd — so one peeked byte decides the decoder.
//
// Stream ids are chosen by the client and scope every server frame to
// one subscription (event frames echo theirs in the ingest ack), so
// frames of many queries interleave on one connection without
// ambiguity. The server closes a subscription with an EOF control frame
// when its query is unregistered or the server shuts down; the
// connection itself stays usable.
type StreamServer struct {
	s *Server

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*streamConn]struct{}
	closed    bool
}

// NewStreamServer wraps s with the persistent streaming protocol; serve
// it on any number of listeners with Serve.
func NewStreamServer(s *Server) *StreamServer {
	return &StreamServer{
		s:         s,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*streamConn]struct{}),
	}
}

// Serve accepts connections on l until the listener fails or the
// StreamServer closes. It blocks; run it in a goroutine.
func (ss *StreamServer) Serve(l net.Listener) error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	ss.listeners[l] = struct{}{}
	ss.mu.Unlock()
	defer func() {
		ss.mu.Lock()
		delete(ss.listeners, l)
		ss.mu.Unlock()
		l.Close()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			ss.mu.Lock()
			closed := ss.closed
			ss.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sc := &streamConn{ss: ss, c: c, done: make(chan struct{}), subs: make(map[uint32]chan struct{})}
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			c.Close()
			return nil
		}
		ss.conns[sc] = struct{}{}
		ss.mu.Unlock()
		go sc.run()
	}
}

// Close stops accepting, severs every live connection, and leaves the
// underlying Server untouched.
func (ss *StreamServer) Close() {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	lns := make([]net.Listener, 0, len(ss.listeners))
	for l := range ss.listeners {
		lns = append(lns, l)
	}
	conns := make([]*streamConn, 0, len(ss.conns))
	for c := range ss.conns {
		conns = append(conns, c)
	}
	ss.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	for _, c := range conns {
		c.close()
	}
}

// streamConn is one client connection: a control-line reader plus one
// writer goroutine per live subscription, all frame writes serialized
// on wmu so frames never interleave mid-frame.
type streamConn struct {
	ss   *StreamServer
	c    net.Conn
	done chan struct{}

	wmu sync.Mutex // serializes frame writes

	mu     sync.Mutex // guards subs
	subs   map[uint32]chan struct{}
	closed bool
}

// run reads client input — JSON control lines and binary event frames,
// dispatched on one peeked byte — until the client disconnects, then
// tears the connection's subscriptions down.
func (sc *streamConn) run() {
	defer sc.close()
	defer func() {
		sc.ss.mu.Lock()
		delete(sc.ss.conns, sc)
		sc.ss.mu.Unlock()
	}()
	br := bufio.NewReaderSize(sc.c, 64<<10)
	fr := wire.NewReader(br)
	defer fr.Close()
	for {
		first, err := br.Peek(1)
		if err != nil {
			return
		}
		switch {
		case first[0] == '{':
			if !sc.controlLine(br) {
				return
			}
		case first[0] == '\n' || first[0] == '\r' || first[0] == ' ' || first[0] == '\t':
			br.ReadByte() // stray whitespace between control lines
		default:
			f, err := fr.Next()
			if err != nil {
				sc.ack(subAck{Error: fmt.Sprintf("bad frame: %v", err)})
				return
			}
			if f.Kind != wire.KindEvents {
				sc.ack(subAck{Stream: f.StreamID, Error: fmt.Sprintf("frame kind %d is not an event frame", f.Kind)})
				return
			}
			sc.ingestFrame(f)
		}
	}
}

// controlLine reads and applies one JSON control line; false severs the
// connection.
func (sc *streamConn) controlLine(br *bufio.Reader) bool {
	line, err := br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			sc.ack(subAck{Error: "control line too long"})
		}
		return false
	}
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return true
	}
	var op subOp
	if err := json.Unmarshal(line, &op); err != nil {
		sc.ack(subAck{Error: fmt.Sprintf("bad control line: %v", err)})
		return false
	}
	switch op.Op {
	case "subscribe":
		sc.subscribe(op)
	case "unsubscribe":
		sc.unsubscribe(op.Stream)
	default:
		sc.ack(subAck{Stream: op.Stream, Error: fmt.Sprintf("unknown op %q", op.Op)})
	}
	return true
}

// ingestFrame pushes one client event frame through the regular ingest
// path — chunked at ingestChunk like every HTTP codec, each chunk one
// WAL record on a durable server — and acks it with a control frame
// echoing the frame's stream id, ctrlAuxDurable set when every chunk
// was fsync-acked. Ingest failures ack with the error instead of
// severing the connection: the client's other subscriptions are fine.
// frameAdmitCharge estimates one event frame's memory footprint for
// admission: the decoded events (three 8-byte words each) plus a small
// fixed overhead for the frame header and staging bookkeeping.
func frameAdmitCharge(rows int) int64 { return int64(rows)*24 + 64 }

func (sc *streamConn) ingestFrame(f wire.Frame) {
	if s := sc.ss.s; s.admit != nil {
		g, err := s.admit.Acquire(sourceOf(sc.c.RemoteAddr().String()), frameAdmitCharge(f.Rows()))
		if err != nil {
			sc.ackAux(f.StreamID, ctrlAuxShed, ingestAck{Stream: f.StreamID, Ingest: true, Error: err.Error()})
			return
		}
		defer g.Release()
	}
	batchp := frameBatchPool.Get().(*[]stream.Event)
	batch := f.AppendEvents((*batchp)[:0])
	var (
		total IngestStatus
		ierr  error
	)
	for off := 0; off < len(batch); off += ingestChunk {
		end := min(off+ingestChunk, len(batch))
		st, err := sc.ss.s.Ingest(batch[off:end])
		if err != nil {
			ierr = err
			break
		}
		total.Accepted += st.Accepted
		total.Dropped += st.Dropped
		if off == 0 {
			total.Durable = st.Durable
		} else {
			total.Durable = total.Durable && st.Durable
		}
	}
	if cap(batch) <= frameBatchRetain {
		*batchp = batch[:0]
		frameBatchPool.Put(batchp)
	}
	ack := ingestAck{Stream: f.StreamID, Ingest: true, Accepted: total.Accepted, Dropped: total.Dropped}
	var aux int64
	if ierr != nil {
		ack.Error = ierr.Error()
	} else if total.Durable {
		ack.Durable = true
		aux = ctrlAuxDurable
	}
	sc.ackAux(f.StreamID, aux, ack)
}

// subscribe resolves the query's ring and starts the subscription's
// writer; errors come back as control frames so one bad subscribe does
// not sever the other streams on the connection.
func (sc *streamConn) subscribe(op subOp) {
	rg, err := sc.ss.s.ringOf(op.ID)
	if err != nil {
		sc.ack(subAck{Stream: op.Stream, ID: op.ID, Error: err.Error()})
		return
	}
	stop := make(chan struct{})
	sc.mu.Lock()
	if limit := sc.ss.s.cfg.MaxStreamSubs; limit > 0 && len(sc.subs) >= limit {
		// Each subscription costs a goroutine plus a pooled staging
		// buffer; an unbounded count lets one connection exhaust the
		// process. The limit errs the op, not the connection.
		sc.mu.Unlock()
		sc.ack(subAck{Stream: op.Stream, ID: op.ID, Error: fmt.Sprintf("subscription limit reached (%d per connection)", limit)})
		return
	}
	if _, taken := sc.subs[op.Stream]; taken {
		sc.mu.Unlock()
		sc.ack(subAck{Stream: op.Stream, ID: op.ID, Error: fmt.Sprintf("stream %d already subscribed", op.Stream)})
		return
	}
	sc.subs[op.Stream] = stop
	sc.mu.Unlock()
	after := op.After
	if first, _ := rg.window(); after >= 0 && after+1 < first {
		// Stale resume cursor: the ring evicted rows past it. Say so with
		// a typed gap frame (and advance the cursor to the surviving
		// head) instead of silently resuming as if nothing was lost.
		sc.ackAux(op.Stream, ctrlAuxGap, subAck{
			Stream: op.Stream, ID: op.ID, OK: true,
			Gap: true, Missed: first - (after + 1), First: first,
		})
		after = first - 1
	} else {
		sc.ack(subAck{Stream: op.Stream, ID: op.ID, OK: true})
	}
	go sc.streamSub(op.Stream, rg, after, stop)
}

// unsubscribe stops one subscription; unknown ids ack with an error.
func (sc *streamConn) unsubscribe(streamID uint32) {
	sc.mu.Lock()
	stop, ok := sc.subs[streamID]
	if ok {
		delete(sc.subs, streamID)
	}
	sc.mu.Unlock()
	if !ok {
		sc.ack(subAck{Stream: streamID, Error: fmt.Sprintf("stream %d not subscribed", streamID)})
		return
	}
	close(stop)
	sc.ack(subAck{Stream: streamID, OK: true})
}

// streamSub is one subscription's writer loop: the persistent-stream
// counterpart of handleStream, with the drained runs framed under the
// subscription's stream id instead of NDJSON. Steady state is
// allocation-free per poll: pooled row staging, pooled encode buffer,
// one frame write per drained run.
func (sc *streamConn) streamSub(streamID uint32, rg *ring, after int64, stop chan struct{}) {
	rowsp := streamRowPool.Get().(*[]ResultRow)
	defer func() { *rowsp = (*rowsp)[:0]; streamRowPool.Put(rowsp) }()
	bufp := streamio.GetEncodeBuf()
	defer streamio.PutEncodeBuf(bufp)
	for {
		wake := rg.waitCh() // fetch before reading: no missed wakeups
		rows, missed := rg.readAfterInto(after, streamChunk, (*rowsp)[:0])
		*rowsp = rows
		if missed > 0 {
			// Eviction outran this subscriber mid-stream; announce the
			// hole before delivering what survives.
			sc.ackAux(streamID, ctrlAuxGap, subAck{
				Stream: streamID, Gap: true, Missed: missed, First: after + 1 + missed,
			})
			after += missed
		}
		if len(rows) > 0 {
			enc := wire.BeginResultFrame((*bufp)[:0], streamID, rows[0].Seq, len(rows))
			for i := range rows {
				enc.SetRow(i, rows[i].Range, rows[i].Slide, rows[i].Start, rows[i].End, rows[i].Key, rows[i].Value)
			}
			buf := enc.Bytes()
			*bufp = buf
			if err := sc.write(buf); err != nil {
				sc.close()
				return
			}
			after = rows[len(rows)-1].Seq
			continue
		}
		if rg.isClosed() {
			sc.ack(subAck{Stream: streamID, EOF: true})
			sc.dropSub(streamID)
			return
		}
		select {
		case <-stop:
			return
		case <-sc.done:
			return
		case <-wake:
		}
	}
}

// dropSub removes a subscription that ended on its own (ring closed).
func (sc *streamConn) dropSub(streamID uint32) {
	sc.mu.Lock()
	delete(sc.subs, streamID)
	sc.mu.Unlock()
}

// ack sends one plain control frame; write failures sever the
// connection.
func (sc *streamConn) ack(a subAck) { sc.ackAux(a.Stream, 0, a) }

// ackAux sends one control frame with the given aux flags and JSON
// payload; write failures sever the connection.
func (sc *streamConn) ackAux(streamID uint32, aux int64, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		return
	}
	buf := wire.AppendControlFrameAux(nil, streamID, aux, payload)
	if sc.write(buf) != nil {
		sc.close()
	}
}

// write sends one whole frame under the write lock with a deadline. A
// connection that cannot even arm its deadline is dead; failing here
// lets the caller evict the subscriber immediately instead of issuing
// an unbounded Write on a wedged socket.
func (sc *streamConn) write(buf []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if err := sc.c.SetWriteDeadline(time.Now().Add(streamWriteTimeout)); err != nil {
		return err
	}
	_, err := sc.c.Write(buf)
	return err
}

// close severs the connection and stops every subscription goroutine.
func (sc *streamConn) close() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	for id, stop := range sc.subs {
		close(stop)
		delete(sc.subs, id)
	}
	sc.mu.Unlock()
	close(sc.done)
	sc.c.Close()
}
