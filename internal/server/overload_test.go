// Overload-protection and graceful-degradation tests: admission
// shedding and recovery over HTTP, request body limits, health and
// readiness endpoints through a WAL fail-stop, panic containment,
// stream-listener bounds, and the flagship chaos property — under
// injected fault schedules the server either serves a batch exactly or
// sheds it cleanly, with results byte-identical to a reference run over
// the applied batches.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"factorwindows/internal/admit"
	"factorwindows/internal/chaos"
	"factorwindows/internal/parallel"
	"factorwindows/internal/reorder"
	"factorwindows/internal/stream"
	"factorwindows/internal/wire"
)

// ndjsonBody renders events as an NDJSON ingest body.
func ndjsonBody(events []stream.Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, `{"time":%d,"key":%d,"value":%g}`+"\n", e.Time, e.Key, e.Value)
	}
	return b.String()
}

func postIngest(t *testing.T, url, contentType, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/ingest", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestIngestAdmissionShedsAndRecovers(t *testing.T) {
	s := New(Config{Shards: 1, MaxInflightBytes: 1 << 10})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `[{"time":1,"key":1,"value":1}]`

	// Budget free: admitted.
	resp := postIngest(t, ts.URL, "application/json", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unloaded ingest status = %d", resp.StatusCode)
	}

	// A grant holding the whole global budget sheds the next request.
	blocker, err := s.Admission().Acquire("blocker", 1<<10)
	if err != nil {
		t.Fatalf("blocker grant: %v", err)
	}
	resp = postIngest(t, ts.URL, "application/json", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded ingest status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carried no Retry-After header")
	}

	// Releasing the budget restores service.
	blocker.Release()
	resp = postIngest(t, ts.URL, "application/json", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release ingest status = %d", resp.StatusCode)
	}
	if st := s.StatsNow(); st.AdmitShed < 1 {
		t.Fatalf("StatsNow().AdmitShed = %d, want >= 1", st.AdmitShed)
	}
}

// TestIngestAdmissionBoundedWait: with AdmitWait set, an over-budget
// request parks instead of shedding and is admitted when capacity
// frees within the window.
func TestIngestAdmissionBoundedWait(t *testing.T) {
	s := New(Config{Shards: 1, MaxInflightBytes: 1 << 10, AdmitWait: 5 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blocker, err := s.Admission().Acquire("blocker", 1<<10)
	if err != nil {
		t.Fatalf("blocker grant: %v", err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		blocker.Release()
	}()
	resp := postIngest(t, ts.URL, "application/json", `[{"time":1,"key":1,"value":1}]`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("waited ingest status = %d, want 200 after capacity freed", resp.StatusCode)
	}
	if st := s.StatsNow(); st.AdmitWaits < 1 {
		t.Fatalf("StatsNow().AdmitWaits = %d, want >= 1", st.AdmitWaits)
	}
}

// TestBodyLimits413 pins the request body caps: oversized register and
// restore bodies get a 413 naming the limit instead of a silent
// truncation, and the buffering ingest codecs respect MaxBodyBytes.
func TestBodyLimits413(t *testing.T) {
	s := New(Config{Shards: 1, MaxBodyBytes: 1 << 10})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	expect413 := func(path, contentType string, body []byte, wantLimit int) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s with %d bytes: status %d, want 413", path, len(body), resp.StatusCode)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(e.Error, fmt.Sprintf("%d", wantLimit)) {
			t.Fatalf("%s 413 error %q does not name the %d-byte limit", path, e.Error, wantLimit)
		}
	}

	expect413("/queries", "text/plain", bytes.Repeat([]byte("x"), maxRegisterBody+10), maxRegisterBody)
	expect413("/restore", "application/octet-stream", bytes.Repeat([]byte("x"), maxRestoreBody+10), maxRestoreBody)
	// The buffering ingest codecs (JSON array, CSV) get the configured
	// cap; a well-formed but oversized body must 413, not OOM or 400 —
	// the bodies here stay valid right up to where the cap cuts them.
	bigJSON := []byte("[" + strings.Repeat(`{"time":1,"key":1,"value":1},`, 200) + `{"time":1,"key":1,"value":1}]`)
	expect413("/ingest", "application/json", bigJSON, 1<<10)
	expect413("/ingest", "text/csv", bytes.Repeat([]byte("1,2,3.5\n"), 600), 1<<10)
}

// TestDegradedModeKeepsServingReads drives a durable server into WAL
// fail-stop with injected write faults and checks the degradation
// contract: ingest sheds 503 + Retry-After, queries and results keep
// serving, /healthz stays alive, /readyz flips to 503, and /stats
// reports degraded.
func TestDegradedModeKeepsServingReads(t *testing.T) {
	inj := chaos.NewInjector(11, chaos.Spec{})
	cfg := durableConfig(t.TempDir())
	cfg.WALFS = chaos.WrapFS(nil, inj)
	s := openDurable(t, cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Register("q", demoQuery1); err != nil {
		t.Fatal(err)
	}
	events := genEvents(600, 5, 31)
	ingestScript(t, s, events, 200)
	before := allRows(t, s, "q")
	if len(before) == 0 {
		t.Fatal("no rows before the fault; test needs data to keep serving")
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy %s status = %d", path, resp.StatusCode)
		}
	}

	// Permanent write fault: the retry budget (none configured here)
	// exhausts and the durable path fail-stops.
	inj.ForceFail("write", 100)
	resp := postIngest(t, ts.URL, "application/x-ndjson", ndjsonBody(genEvents(10, 5, 32)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest at the WAL fault: status %d, want 503", resp.StatusCode)
	}

	// Ingest is now shed with 503 + Retry-After via the sticky gate.
	resp = postIngest(t, ts.URL, "application/x-ndjson", ndjsonBody(genEvents(10, 5, 33)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("degraded 503 carried no Retry-After header")
	}
	if _, err := s.Ingest(genEvents(5, 5, 34)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("direct Ingest err = %v, want ErrDegraded", err)
	}

	// Liveness survives; readiness does not.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "degraded" || h.Ready {
		t.Fatalf("degraded /healthz = %d %+v", resp.StatusCode, h)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("/readyz 503 carried no Retry-After header")
	}

	// Reads still serve, and serve everything applied before the fault.
	after := allRows(t, s, "q")
	if len(after) < len(before) {
		t.Fatalf("degraded server lost rows: %d -> %d", len(before), len(after))
	}
	if st := s.StatsNow(); !st.Degraded || st.WALError == "" {
		t.Fatalf("StatsNow() = degraded=%t wal_error=%q, want degraded with the cause", st.Degraded, st.WALError)
	}
}

// TestWALRetriesRideThroughTransientFaults: with a retry budget, a
// burst of transient write faults is absorbed without degrading and
// the retries surface in /stats.
func TestWALRetriesRideThroughTransientFaults(t *testing.T) {
	inj := chaos.NewInjector(12, chaos.Spec{})
	cfg := durableConfig(t.TempDir())
	cfg.WALFS = chaos.WrapFS(nil, inj)
	cfg.WALRetries = 5
	cfg.WALRetryBackoff = 50 * time.Microsecond
	s := openDurable(t, cfg)
	defer s.Shutdown()

	if _, err := s.Register("q", demoQuery1); err != nil {
		t.Fatal(err)
	}
	inj.ForceFail("write", 3)
	st, err := s.Ingest(genEvents(50, 5, 41))
	if err != nil {
		t.Fatalf("ingest under transient faults: %v", err)
	}
	if !st.Durable {
		t.Fatal("ride-through ingest not durable")
	}
	stats := s.StatsNow()
	if stats.Degraded {
		t.Fatal("server degraded on a transient fault within budget")
	}
	if stats.WALRetries < 3 {
		t.Fatalf("StatsNow().WALRetries = %d, want >= 3", stats.WALRetries)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "boom") {
		t.Fatalf("500 body %q does not carry the panic value", rec.Body.String())
	}
	if got := s.StatsNow().Panics; got != 1 {
		t.Fatalf("StatsNow().Panics = %d, want 1", got)
	}

	// http.ErrAbortHandler must keep its sanctioned meaning: re-panic,
	// not a 500.
	abort := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Fatal("ErrAbortHandler was swallowed")
			}
		}()
		abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
	if got := s.StatsNow().Panics; got != 1 {
		t.Fatalf("ErrAbortHandler counted as a panic: %d", got)
	}
}

// TestReorderCapBoundsServerBuffer floods a capped server with events
// in shuffled order and no natural release horizon: the buffer must
// hold at the cap with the overflow accounted in /stats.
func TestReorderCapBoundsServerBuffer(t *testing.T) {
	s := New(Config{
		Shards:           1,
		ReorderBound:     1 << 40, // nothing releases naturally
		ReorderCap:       64,
		ReorderCapPolicy: reorder.ReleaseOldest,
	})
	defer s.Close()
	if _, err := s.Register("q", demoQuery1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	times := rng.Perm(1000)
	for _, tm := range times {
		if _, err := s.Ingest([]stream.Event{{Time: int64(tm), Key: uint64(tm % 7), Value: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.StatsNow()
	if st.Buffered > 64 {
		t.Fatalf("Buffered = %d events, cap is 64", st.Buffered)
	}
	if st.ReorderCapReleased+st.ReorderCapDropped == 0 {
		t.Fatal("flood at the cap left no cap accounting in /stats")
	}
	if total := st.ReorderCapReleased + st.ReorderCapDropped + int64(st.Buffered) + st.Late + st.Dropped; total < 1000-64 {
		t.Fatalf("cap accounting does not reconcile: released=%d dropped=%d buffered=%d late=%d",
			st.ReorderCapReleased, st.ReorderCapDropped, st.Buffered, st.Late)
	}
}

// TestStreamSubscriptionCap: one connection cannot hold more than
// MaxStreamSubs live subscriptions; unsubscribing frees a slot.
func TestStreamSubscriptionCap(t *testing.T) {
	s := New(Config{Shards: 1, MaxStreamSubs: 2})
	defer s.Close()
	if _, err := s.Register("q", demoQuery1); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamServer(s)
	defer ss.Close()
	go ss.Serve(ln)

	cl := dialStream(t, ln.Addr().String())
	cl.send(subOp{Op: "subscribe", Stream: 1, ID: "q", After: -1})
	cl.expectAck(subAck{Stream: 1, OK: true})
	cl.send(subOp{Op: "subscribe", Stream: 2, ID: "q", After: -1})
	cl.expectAck(subAck{Stream: 2, OK: true})
	cl.send(subOp{Op: "subscribe", Stream: 3, ID: "q", After: -1})
	f := cl.next()
	var ack subAck
	if err := json.Unmarshal(f.Control(), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Stream != 3 || !strings.Contains(ack.Error, "limit") {
		t.Fatalf("over-cap subscribe ack = %+v, want a limit error", ack)
	}
	cl.send(subOp{Op: "unsubscribe", Stream: 1})
	cl.expectAck(subAck{Stream: 1, OK: true})
	cl.send(subOp{Op: "subscribe", Stream: 3, ID: "q", After: -1})
	cl.expectAck(subAck{Stream: 3, OK: true})
}

// TestStreamDeadConnEvicted: a connection whose write deadline cannot
// even be armed is dead; the subscriber is evicted instead of wedging
// a writer goroutine on an unbounded Write.
func TestStreamDeadConnEvicted(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	if _, err := s.Register("q", demoQuery1); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(13, chaos.Spec{})
	ss := NewStreamServer(s)
	defer ss.Close()
	go ss.Serve(chaos.WrapListener(ln, inj))

	cl := dialStream(t, ln.Addr().String())
	cl.send(subOp{Op: "subscribe", Stream: 1, ID: "q", After: -1})
	cl.expectAck(subAck{Stream: 1, OK: true})

	// The next server-side write fails to arm its deadline; results for
	// this ingest must sever the connection rather than hang.
	inj.ForceFail("conn.setwritedeadline", 1)
	if _, err := s.Ingest(genEvents(400, 3, 61)); err != nil {
		t.Fatal(err)
	}
	cl.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := cl.fr.Next(); err != nil {
			return // severed, as required
		}
	}
}

// TestStreamIngestShedAck: an over-budget binary event frame is shed
// with an error ack carrying the typed shed aux flag; the connection
// itself stays usable.
func TestStreamIngestShedAck(t *testing.T) {
	s := New(Config{Shards: 1, MaxInflightBytes: 1 << 10})
	defer s.Close()
	if _, err := s.Register("q", demoQuery1); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamServer(s)
	defer ss.Close()
	go ss.Serve(ln)

	blocker, err := s.Admission().Acquire("blocker", 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	cl := dialStream(t, ln.Addr().String())
	if _, err := cl.c.Write(wire.AppendEventFrame(nil, genEvents(100, 3, 71))); err != nil {
		t.Fatal(err)
	}
	f := cl.next()
	var ack ingestAck
	if err := json.Unmarshal(f.Control(), &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Ingest || ack.Error == "" || ack.Accepted != 0 {
		t.Fatalf("shed ingest ack = %+v, want an error with nothing accepted", ack)
	}
	if !strings.Contains(ack.Error, "overloaded") {
		t.Fatalf("shed ack error %q does not say overloaded", ack.Error)
	}
	if f.Seq&ctrlAuxShed == 0 {
		t.Fatalf("shed ack aux = %#x, shed flag missing", f.Seq)
	}
	if g := s.StatsNow(); g.AdmitShed < 1 {
		t.Fatalf("AdmitShed = %d, want >= 1", g.AdmitShed)
	}

	// Budget freed: the same connection ingests fine.
	blocker.Release()
	if _, err := cl.c.Write(wire.AppendEventFrame(nil, genEvents(100, 3, 72))); err != nil {
		t.Fatal(err)
	}
	f = cl.next()
	var ok ingestAck
	if err := json.Unmarshal(f.Control(), &ok); err != nil {
		t.Fatal(err)
	}
	if ok.Error != "" || ok.Accepted != 100 {
		t.Fatalf("post-release ingest ack = %+v", ok)
	}
}

// chaosSeeds are the committed fault schedules the flagship property
// runs under; the same seed always replays the same schedule.
var chaosSeeds = []int64{1, 42, 1234, 987654321}

// TestChaosShedOrServeByteIdentical is the flagship degradation
// property. A durable server runs under a seeded fault schedule:
// transient torn WAL writes (absorbed by the retry budget),
// deterministic admission sheds (a blocker grant holds the whole byte
// budget for randomly chosen batches), and finally a permanent WAL
// fault that degrades the server mid-stream. Every batch therefore
// ends in exactly one of three observable states: acked 200 (applied),
// shed 429 (not applied), or failed 503 at the fault boundary —
// applied in memory but unacked, because application precedes the
// commit wait by design. A reference server fed precisely the applied
// batches must produce byte-identical result rings, sequence numbers
// included, and the run must stay inside every memory budget.
func TestChaosShedOrServeByteIdentical(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := chaos.NewInjector(seed, chaos.Spec{
				FailProb:    0.10,
				PartialProb: 0.5,
				Ops:         map[string]bool{"write": true, "sync": true},
			})
			cfg := durableConfig(t.TempDir())
			cfg.WALFS = chaos.WrapFS(nil, inj)
			cfg.WALRetries = 12
			cfg.WALRetryBackoff = 20 * time.Microsecond
			cfg.MaxInflightBytes = 1 << 20
			cfg.ReorderCap = 1 << 16
			cfg.ReorderCapPolicy = reorder.ReleaseOldest
			s := openDurable(t, cfg)
			defer s.Close()
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			refCfg := cfg
			refCfg.Durable = false
			refCfg.WALDir = ""
			refCfg.WALFS = nil
			refCfg.MaxInflightBytes = 0
			ref := New(refCfg)
			defer ref.Close()

			for _, srv := range []*Server{s, ref} {
				if _, err := srv.Register("a", demoQuery1); err != nil {
					t.Fatal(err)
				}
				if _, err := srv.Register("b", demoQuery2); err != nil {
					t.Fatal(err)
				}
			}

			events := genEvents(2000, 5, seed)
			rng := rand.New(rand.NewSource(seed))
			const batchSize = 50
			var applied, shed, failed int
			for off := 0; off < len(events); off += batchSize {
				batch := events[off:min(off+batchSize, len(events))]
				// Roughly a third of the batches arrive while the budget is
				// exhausted; the schedule is part of the committed seed.
				var blocker *admit.Grant
				if rng.Float64() < 0.3 {
					var err error
					if blocker, err = s.Admission().Acquire("blocker", 1<<20); err != nil {
						t.Fatalf("blocker grant: %v", err)
					}
				}
				resp := postIngest(t, ts.URL, "application/x-ndjson", ndjsonBody(batch))
				resp.Body.Close()
				blocker.Release()
				switch resp.StatusCode {
				case http.StatusOK:
					applied++
					if _, err := ref.Ingest(batch); err != nil {
						t.Fatal(err)
					}
				case http.StatusTooManyRequests:
					if blocker == nil {
						t.Fatal("429 without the blocker held")
					}
					shed++ // not applied anywhere
				default:
					t.Fatalf("batch at %d: status %d", off, resp.StatusCode)
				}
			}
			if shed == 0 {
				t.Fatal("schedule shed no batches; property vacuous")
			}
			if inj.Injected("") == 0 {
				t.Fatal("schedule injected no WAL faults; property vacuous")
			}

			// Permanent fault: the next non-shed batch fails 503 at the
			// boundary — applied in memory, unacked — then the sticky gate
			// sheds everything after without applying it.
			inj.ForceFail("write", 1000)
			tail := genEvents(300, 5, seed+1)
			for i := range tail {
				tail[i].Time += events[len(events)-1].Time
			}
			for off := 0; off < len(tail); off += batchSize {
				batch := tail[off : off+batchSize]
				resp := postIngest(t, ts.URL, "application/x-ndjson", ndjsonBody(batch))
				resp.Body.Close()
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Fatalf("tail batch at %d: status %d, want 503", off, resp.StatusCode)
				}
				if failed == 0 {
					// The boundary batch reached the pipeline before its
					// commit failed; the reference must include it.
					if _, err := ref.Ingest(batch); err != nil {
						t.Fatal(err)
					}
				}
				failed++
			}

			// Degraded, but reads byte-identical to the reference over the
			// applied batches.
			for _, id := range []string{"a", "b"} {
				want, got := allRows(t, ref, id), allRows(t, s, id)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("query %s: degraded rows diverge from reference (ref %d rows, got %d; applied=%d shed=%d failed=%d)",
						id, len(want), len(got), applied, shed, failed)
				}
			}

			// Memory budgets held throughout.
			st := s.StatsNow()
			if !st.Degraded {
				t.Fatal("server not degraded after the permanent fault")
			}
			if int(st.Buffered) > cfg.ReorderCap {
				t.Fatalf("Buffered = %d events, reorder cap %d", st.Buffered, cfg.ReorderCap)
			}
			if st.EgressPeakRows > parallel.OrderedSpill {
				t.Fatalf("EgressPeakRows = %d, ordered-drain budget %d", st.EgressPeakRows, parallel.OrderedSpill)
			}
			// Staged WAL bytes are bounded by one group-commit's worth of
			// batches: a batch encodes to <24 bytes per event plus frame
			// overhead, and sequential driving keeps at most one batch
			// staged.
			if limit := int64(batchSize*32 + 4096); st.WALStagedPeak > limit {
				t.Fatalf("WALStagedPeak = %d bytes, budget %d", st.WALStagedPeak, limit)
			}
		})
	}
}
