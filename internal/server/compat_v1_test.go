package server

import (
	"os"
	"path/filepath"
	"testing"
)

// testdata/checkpoint_v1_two_queries.bin is a full server checkpoint
// taken by the boxed-state (v1) codec: two SUM queries on 4 shards with
// factors on and reorder bound 4, after ingesting the first 600 events
// of genEvents(1000, 5, 99). The server checkpoint embeds the parallel
// runner's engine snapshots, so restoring it proves the whole v1→v2
// migration chain: server → parallel → engine → columnar store.
func TestRestoreV1ServerCheckpoint(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "checkpoint_v1_two_queries.bin"))
	if err != nil {
		t.Fatal(err)
	}
	events := genEvents(1000, 5, 99)
	const cut = 600

	// Reference: the same configuration runs the whole stream in one
	// epoch on a fresh (columnar) server.
	ref := New(Config{Shards: 4, Factors: true, ReorderBound: 4})
	defer ref.Close()
	if _, err := ref.Register("a", demoQuery1); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Register("b", demoQuery2); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Ingest(events); err != nil {
		t.Fatal(err)
	}
	ref.Close()

	s := New(Config{Shards: 4, Factors: true, ReorderBound: 4})
	defer s.Close()
	if err := s.RestoreCheckpoint(data); err != nil {
		t.Fatalf("restoring v1 checkpoint: %v", err)
	}
	st := s.StatsNow()
	if st.Queries != 2 || st.Ingested != cut {
		t.Fatalf("restored stats = %+v, want 2 queries, %d ingested", st, cut)
	}
	if _, err := s.Ingest(events[cut:]); err != nil {
		t.Fatal(err)
	}
	s.Close()

	for _, id := range []string{"a", "b"} {
		want := serverRows(t, ref, id)
		got := serverRows(t, s, id)
		// The restored server only delivers windows that fire after the
		// checkpoint; the reference stream has them all. Keep the
		// reference rows that the restored run also produced and demand
		// the overlap is exact and non-trivial.
		tail := make(map[row]int)
		for _, rw := range got {
			tail[rw]++
		}
		matched := 0
		for _, rw := range want {
			if tail[rw] > 0 {
				tail[rw]--
				matched++
			}
		}
		if matched != len(got) {
			t.Fatalf("query %s: %d of %d restored rows not present in the reference run",
				id, len(got)-matched, len(got))
		}
		if len(got) == 0 {
			t.Fatalf("query %s: restored run produced no rows", id)
		}
	}
}
