package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"factorwindows/internal/stream"
	"factorwindows/internal/window"
)

// discardResponseWriter absorbs the streamed body so the benchmark
// measures the encode path, not response buffering.
type discardResponseWriter struct {
	h http.Header
	n int64
}

func (w *discardResponseWriter) Header() http.Header { return w.h }

func (w *discardResponseWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func (w *discardResponseWriter) WriteHeader(int) {}

// BenchmarkStreamNDJSON measures the result stream's wire path: drain a
// full ring through handleStream as NDJSON, exactly as a connected
// client would. The ring is closed, so each iteration reads every row
// and returns instead of parking.
func BenchmarkStreamNDJSON(b *testing.B) {
	const rows = 8192
	s := New(Config{ResultBuffer: rows})
	rg := newRing(rows)
	w := window.Tumbling(20)
	for i := 0; i < rows; i++ {
		rg.append(stream.Result{
			W: w, Start: int64(i) * 20, End: int64(i+1) * 20,
			Key: uint64(i % 512), Value: float64(i%997) + 0.5,
		})
	}
	rg.closeRing()
	s.queries["q"] = &registration{id: "q", ring: rg}
	req := httptest.NewRequest("GET", "/queries/q/stream", nil)
	req.SetPathValue("id", "q")
	b.ReportAllocs()
	b.ResetTimer()
	var written int64
	for i := 0; i < b.N; i++ {
		rw := &discardResponseWriter{h: make(http.Header)}
		s.handleStream(rw, req)
		written = rw.n
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
	b.ReportMetric(float64(written)/rows, "B/row")
}
