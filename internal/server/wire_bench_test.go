package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"factorwindows/internal/reorder"
	"factorwindows/internal/stream"
	"factorwindows/internal/streamio"
	"factorwindows/internal/window"
	"factorwindows/internal/wire"
)

// wireBenchEvents builds the shared ingest workload: in-order ticks
// over a small key set, enough events that codec cost dominates the
// fixed per-request overhead.
func wireBenchEvents(n int) []stream.Event {
	events := make([]stream.Event, n)
	for i := range events {
		events[i] = stream.Event{
			Time: int64(i) / 4, Key: uint64(i % 8), Value: float64(i%997) * 0.25,
		}
	}
	return events
}

// BenchmarkIngestWire compares the ingest codecs head-to-head through
// handleIngest: one pre-encoded 64k-event body per op, identical events
// in every encoding, the adjust policy clamping the repeated times so
// each op does full engine work. The binary frames decode by columnar
// scatter instead of per-event text parsing — that gap is the wire
// format's reason to exist, and BENCH_wire.json guards it.
func BenchmarkIngestWire(b *testing.B) {
	const nevents = 1 << 16
	events := wireBenchEvents(nevents)
	codecs := []struct {
		name        string
		contentType string
		encode      func(io.Writer, []stream.Event) error
	}{
		{"binary", ContentTypeFrame, streamio.WriteBinary},
		{"ndjson", "application/x-ndjson", streamio.WriteJSONL},
		{"csv", "text/csv", streamio.WriteCSV},
	}
	for _, c := range codecs {
		b.Run(c.name, func(b *testing.B) {
			var body bytes.Buffer
			if err := c.encode(&body, events); err != nil {
				b.Fatal(err)
			}
			payload := body.Bytes()
			s := New(Config{Shards: 2, Policy: reorder.Adjust})
			defer s.Close()
			if _, err := s.Register("q", "SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 20))"); err != nil {
				b.Fatal(err)
			}
			br := bytes.NewReader(payload)
			req := httptest.NewRequest("POST", "/ingest", br)
			req.Header.Set("Content-Type", c.contentType)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.Reset(payload)
				rw := &discardResponseWriter{h: make(http.Header)}
				s.handleIngest(rw, req)
			}
			b.ReportMetric(float64(nevents)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
		})
	}
}

// BenchmarkWireIngestSteady is the binary ingest kernel without the
// HTTP layer: frame decode, columnar scatter into the warm staging
// batch, and the engine push. Steady state must be allocation-free —
// the zero-alloc test pins it, this records the ns/op.
func BenchmarkWireIngestSteady(b *testing.B) {
	const nevents = 1 << 16
	var payload []byte
	events := wireBenchEvents(nevents)
	for off := 0; off < nevents; off += 8192 {
		payload = wire.AppendEventFrame(payload, events[off:off+8192])
	}
	s := New(Config{Shards: 2, Policy: reorder.Adjust})
	defer s.Close()
	if _, err := s.Register("q", "SELECT DeviceID, SUM(T) FROM In GROUP BY DeviceID, Windows(TumblingWindow(tick, 20))"); err != nil {
		b.Fatal(err)
	}
	br := bytes.NewReader(payload)
	fr := wire.NewReader(br)
	defer fr.Close()
	batch := make([]stream.Event, 0, 8192)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(payload)
		fr.Reset(br)
		for {
			f, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			batch = f.AppendEvents(batch[:0])
			if _, err := s.Ingest(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(nevents)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkStreamFrame is BenchmarkStreamNDJSON's binary twin: drain a
// full closed ring through handleStream with the frame Accept header,
// exactly as a binary subscriber would.
func BenchmarkStreamFrame(b *testing.B) {
	const rows = 8192
	s := New(Config{ResultBuffer: rows})
	rg := newRing(rows)
	w := window.Tumbling(20)
	for i := 0; i < rows; i++ {
		rg.append(stream.Result{
			W: w, Start: int64(i) * 20, End: int64(i+1) * 20,
			Key: uint64(i % 512), Value: float64(i%997) + 0.5,
		})
	}
	rg.closeRing()
	s.queries["q"] = &registration{id: "q", ring: rg}
	req := httptest.NewRequest("GET", "/queries/q/stream", nil)
	req.Header.Set("Accept", ContentTypeFrame)
	req.SetPathValue("id", "q")
	b.ReportAllocs()
	b.ResetTimer()
	var written int64
	for i := 0; i < b.N; i++ {
		rw := &discardResponseWriter{h: make(http.Header)}
		s.handleStream(rw, req)
		written = rw.n
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
	b.ReportMetric(float64(written)/rows, "B/row")
}

// BenchmarkStreamFramePoll is the per-poll egress kernel: drain one
// ring run into the warm staging buffer and encode it as a single
// result frame. This is the loop body of both the HTTP stream and the
// persistent listener; steady state is allocation-free.
func BenchmarkStreamFramePoll(b *testing.B) {
	rg := newRing(streamChunk)
	w := window.Tumbling(20)
	for i := 0; i < streamChunk; i++ {
		rg.append(stream.Result{
			W: w, Start: int64(i) * 20, End: int64(i+1) * 20,
			Key: uint64(i % 512), Value: float64(i%997) + 0.5,
		})
	}
	rows := make([]ResultRow, 0, streamChunk)
	buf := make([]byte, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ = rg.readAfterInto(-1, streamChunk, rows[:0])
		buf = encodeFrameRows(buf[:0], rows)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportMetric(float64(streamChunk)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
}
