package stats

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if !approx(Mean(xs), 2.8) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 5 || Min(xs) != 1 {
		t.Fatal("Max/Min wrong")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Max(nil)) || !math.IsNaN(Min(nil)) {
		t.Fatal("empty input must yield NaN")
	}
}

func TestStdDev(t *testing.T) {
	if !approx(StdDev([]float64{2, 2, 2}), 0) {
		t.Fatal("constant stddev must be 0")
	}
	// Population stddev of {1,2,3,4} is sqrt(1.25).
	if !approx(StdDev([]float64{1, 2, 3, 4}), math.Sqrt(1.25)) {
		t.Fatalf("StdDev = %v", StdDev([]float64{1, 2, 3, 4}))
	}
	if !math.IsNaN(StdDev(nil)) {
		t.Fatal("empty stddev must be NaN")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Perfect positive and negative correlation.
	if !approx(Pearson(xs, []float64{2, 4, 6, 8, 10}), 1) {
		t.Fatal("perfect correlation must be 1")
	}
	if !approx(Pearson(xs, []float64{10, 8, 6, 4, 2}), -1) {
		t.Fatal("perfect anticorrelation must be -1")
	}
	// Uncorrelated symmetric case.
	if !approx(Pearson([]float64{-1, 0, 1, 0}, []float64{0, 1, 0, -1}), 0) {
		t.Fatalf("r = %v", Pearson([]float64{-1, 0, 1, 0}, []float64{0, 1, 0, -1}))
	}
	// Degenerate cases.
	if !math.IsNaN(Pearson(xs, []float64{1, 1, 1, 1, 1})) {
		t.Fatal("constant series must yield NaN")
	}
	if !math.IsNaN(Pearson(xs, xs[:3])) {
		t.Fatal("length mismatch must yield NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{1})) {
		t.Fatal("single point must yield NaN")
	}
}

func TestLinearFit(t *testing.T) {
	slope, intercept := LinearFit([]float64{0, 1, 2, 3}, []float64{1, 3, 5, 7})
	if !approx(slope, 2) || !approx(intercept, 1) {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	s, i := LinearFit([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(s) || !math.IsNaN(i) {
		t.Fatal("vertical fit must yield NaN")
	}
}
