// Package stats provides the summary statistics the evaluation reports:
// mean, max, standard deviation (Fig. 12's error bars) and the Pearson
// correlation coefficient used for the cost-model validation (Fig. 19).
package stats

import "math"

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs, or NaN for
// empty input.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient r between xs and
// ys. It returns NaN if the lengths differ, fewer than two points are
// given, or either series is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit returns the least-squares slope and intercept of y on x (the
// "Best-Fit" lines of Fig. 19). It returns NaNs on degenerate input.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		sxy += (xs[i] - mx) * (ys[i] - my)
		sxx += (xs[i] - mx) * (xs[i] - mx)
	}
	if sxx == 0 {
		return math.NaN(), math.NaN()
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}
