// Package slicing implements a general stream-slicing executor in the
// style of Scotty (Traub et al., [48][49]), the window-slicing baseline
// the paper compares against in Section V-F.
//
// Stream slicing chops the input into non-overlapping slices whose edges
// are all window start/end boundaries (every multiple of every window's
// slide; window ends land on these edges too because ranges are multiples
// of slides). Each event is folded into exactly one slice per key, and a
// window instance [e−r, e) firing at edge e is answered by merging the
// buffered slices spanning it. Slices are shared across all windows of
// the set, which is the source of Scotty's aggregate sharing.
//
// Unlike the factor-window approach, slicing needs engine support for
// user-defined operators (slices and their buffer live inside the
// operator); here we simply implement that operator directly.
package slicing

import (
	"fmt"

	"factorwindows/internal/agg"
	"factorwindows/internal/stream"
	"factorwindows/internal/window"
)

// slice is one chunk [start, end) with per-key pre-aggregates, stored
// densely by key slot (see Runner.slots).
type slice struct {
	start, end int64
	states     []*agg.State
	live       int
}

// Runner evaluates an aggregate over a window set by general stream
// slicing. It is single-core and not safe for concurrent use.
type Runner struct {
	fn      agg.Fn
	windows []window.Window
	sink    stream.Sink

	slides   []int64
	maxRange int64

	cur    *slice // the open slice
	buf    []*slice
	head   int
	closed bool
	events int64
	merges int64 // slice merges performed (work counter)

	// slots maps group keys to dense slot indices; keys is the inverse.
	// Slicing has a single shared operator, so one grouping table is
	// faithful to how Scotty's slice store is keyed.
	slots map[uint64]int32
	keys  []uint64

	mergeBuf  []*agg.State
	statePool []*agg.State
	slicePool []*slice
}

// New builds a slicing runner for the window set. Holistic functions
// (MEDIAN) are supported the way Section III-A describes Scotty's
// support: the slices then hold all raw event values rather than
// constant-size sub-aggregates, so per-slice storage grows with data.
func New(set *window.Set, fn agg.Fn, sink stream.Sink) (*Runner, error) {
	if set == nil || set.Len() == 0 {
		return nil, fmt.Errorf("slicing: empty window set")
	}
	if sink == nil {
		return nil, fmt.Errorf("slicing: nil sink")
	}
	if !fn.Valid() {
		return nil, fmt.Errorf("slicing: invalid aggregate function %v", fn)
	}
	r := &Runner{fn: fn, sink: sink, slots: make(map[uint64]int32)}
	for _, w := range set.Sorted() {
		if err := w.Validate(); err != nil {
			return nil, err
		}
		r.windows = append(r.windows, w)
		r.slides = append(r.slides, w.Slide)
		if w.Range > r.maxRange {
			r.maxRange = w.Range
		}
	}
	return r, nil
}

// nextEdge returns the smallest slice edge strictly greater than t.
// Edges are the multiples of any window slide; computing the minimum over
// windows avoids materializing the edge set (whose period is the lcm of
// all slides and can be astronomically large).
func (r *Runner) nextEdge(t int64) int64 {
	next := int64(1) << 62
	for _, s := range r.slides {
		e := (t/s + 1) * s
		if e < next {
			next = e
		}
	}
	return next
}

// prevEdge returns the largest edge ≤ t.
func (r *Runner) prevEdge(t int64) int64 {
	prev := int64(0)
	for _, s := range r.slides {
		e := t / s * s
		if e > prev {
			prev = e
		}
	}
	return prev
}

// Process folds a batch of in-order events into the slice store, firing
// windows whose end edges are crossed.
func (r *Runner) Process(events []stream.Event) {
	if r.closed {
		panic("slicing: Process after Close")
	}
	for i := range events {
		e := &events[i]
		r.events++
		if r.cur == nil {
			r.openSliceAt(e.Time)
		}
		for e.Time >= r.cur.end {
			r.roll()
		}
		st := r.cur.state(r, r.slot(e.Key))
		agg.Add(r.fn, st, e.Value)
	}
}

// slot returns the dense slot index for key, allocating one on first use.
func (r *Runner) slot(key uint64) int32 {
	if s, ok := r.slots[key]; ok {
		return s
	}
	s := int32(len(r.keys))
	r.slots[key] = s
	r.keys = append(r.keys, key)
	return s
}

// state returns the aggregate state for slot in sl, materializing it on
// first touch.
func (sl *slice) state(r *Runner, slot int32) *agg.State {
	if int(slot) >= len(sl.states) {
		if cap(sl.states) > int(slot) {
			sl.states = sl.states[:cap(sl.states)]
		}
		for len(sl.states) <= int(slot) {
			sl.states = append(sl.states, nil)
		}
	}
	st := sl.states[slot]
	if st == nil {
		st = r.newState()
		sl.states[slot] = st
		sl.live++
	}
	return st
}

// openSliceAt opens the slice containing t.
func (r *Runner) openSliceAt(t int64) {
	start := r.prevEdge(t)
	r.cur = r.newSlice(start, r.nextEdge(t))
}

// roll closes the current slice and advances one edge, firing windows at
// the crossed edge (a skipped edge may still end a window instance that
// holds older events, so the caller loops until the slice containing the
// next event is open; intervening slices are empty placeholders).
func (r *Runner) roll() {
	edge := r.cur.end
	r.closeCurrent()
	r.fireAt(edge)
	r.evict(edge)
	r.cur = r.newSlice(edge, r.nextEdge(edge))
}

// closeCurrent appends the open slice to the buffer.
func (r *Runner) closeCurrent() {
	r.buf = append(r.buf, r.cur)
	r.cur = nil
}

// fireAt emits every window instance ending exactly at edge e.
func (r *Runner) fireAt(e int64) {
	for _, w := range r.windows {
		start := e - w.Range
		if start < 0 || start%w.Slide != 0 {
			continue
		}
		r.emitInstance(w, start, e)
	}
}

// emitInstance merges the buffered slices spanning [start, end) and emits
// one result per key present.
func (r *Runner) emitInstance(w window.Window, start, end int64) {
	if cap(r.mergeBuf) < len(r.keys) {
		r.mergeBuf = make([]*agg.State, len(r.keys))
	}
	merged := r.mergeBuf[:len(r.keys)]
	touched := false
	for i := r.head; i < len(r.buf); i++ {
		sl := r.buf[i]
		if sl.end <= start {
			continue
		}
		if sl.start >= end {
			break
		}
		if sl.start < start || sl.end > end {
			panic(fmt.Sprintf("slicing: slice [%d,%d) straddles window [%d,%d)",
				sl.start, sl.end, start, end))
		}
		if sl.live == 0 {
			continue
		}
		for slot, st := range sl.states {
			if st == nil {
				continue
			}
			m := merged[slot]
			if m == nil {
				m = r.newState()
				merged[slot] = m
				touched = true
			}
			agg.MergeRaw(r.fn, m, st)
			r.merges++
		}
	}
	if !touched {
		return
	}
	for slot, st := range merged {
		if st == nil {
			continue
		}
		if !st.Empty() {
			r.sink.Emit(stream.Result{W: w, Start: start, End: end, Key: r.keys[slot], Value: agg.Final(r.fn, st)})
		}
		st.Reset()
		r.statePool = append(r.statePool, st)
		merged[slot] = nil
	}
}

// evict drops buffered slices no longer reachable by any future window
// instance: anything ending at or before e − maxRange.
func (r *Runner) evict(e int64) {
	for r.head < len(r.buf) && r.buf[r.head].end <= e-r.maxRange {
		r.releaseSlice(r.buf[r.head])
		r.buf[r.head] = nil
		r.head++
	}
	if r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	}
}

// Close flushes: the open slice is sealed and every pending window
// instance that already contains data fires at its natural end edge.
func (r *Runner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.cur == nil {
		return
	}
	lastData := r.cur.end
	r.closeCurrent()
	// Walk edges until every window instance overlapping the data has
	// ended: the farthest relevant edge is lastData + maxRange.
	for e := lastData; e <= lastData+r.maxRange; e = r.nextEdge(e) {
		r.fireAt(e)
	}
}

// Events returns the number of events processed.
func (r *Runner) Events() int64 { return r.events }

// Merges returns the number of per-key slice merges performed, the
// slicing analogue of the engine's TotalInputs work counter.
func (r *Runner) Merges() int64 { return r.merges }

// Run is a convenience wrapper: process all events and flush.
func Run(set *window.Set, fn agg.Fn, events []stream.Event, sink stream.Sink) (*Runner, error) {
	r, err := New(set, fn, sink)
	if err != nil {
		return nil, err
	}
	r.Process(events)
	r.Close()
	return r, nil
}

func (r *Runner) newSlice(start, end int64) *slice {
	if k := len(r.slicePool); k > 0 {
		sl := r.slicePool[k-1]
		r.slicePool = r.slicePool[:k-1]
		sl.start, sl.end = start, end
		return sl
	}
	return &slice{start: start, end: end, states: make([]*agg.State, 0, len(r.keys))}
}

func (r *Runner) releaseSlice(sl *slice) {
	if sl.live > 0 {
		for slot, st := range sl.states {
			if st != nil {
				st.Reset()
				r.statePool = append(r.statePool, st)
				sl.states[slot] = nil
			}
		}
	}
	sl.live = 0
	sl.states = sl.states[:0]
	r.slicePool = append(r.slicePool, sl)
}

func (r *Runner) newState() *agg.State {
	if k := len(r.statePool); k > 0 {
		st := r.statePool[k-1]
		r.statePool = r.statePool[:k-1]
		return st
	}
	return &agg.State{}
}
