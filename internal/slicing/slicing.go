// Package slicing implements a general stream-slicing executor in the
// style of Scotty (Traub et al., [48][49]), the window-slicing baseline
// the paper compares against in Section V-F.
//
// Stream slicing chops the input into non-overlapping slices whose edges
// are all window start/end boundaries (every multiple of every window's
// slide; window ends land on these edges too because ranges are multiples
// of slides). Each event is folded into exactly one slice per key, and a
// window instance [e−r, e) firing at edge e is answered by merging the
// buffered slices spanning it. Slices are shared across all windows of
// the set, which is the source of Scotty's aggregate sharing.
//
// Slice pre-aggregates live in a columnar agg.Store: each slice owns a
// span of rows addressed by key slot, exactly the dense pre-aggregate
// layout Scotty-lineage systems use, so folding an event is a column
// write rather than a boxed-state pointer chase.
//
// Unlike the factor-window approach, slicing needs engine support for
// user-defined operators (slices and their buffer live inside the
// operator); here we simply implement that operator directly.
package slicing

import (
	"fmt"

	"factorwindows/internal/agg"
	"factorwindows/internal/stream"
	"factorwindows/internal/window"
)

// slice is one chunk [start, end) whose per-key pre-aggregates are the
// span [span, span+cap) in the runner's store, indexed by key slot.
type slice struct {
	start, end int64
	span, cap  int32
}

// Runner evaluates an aggregate over a window set by general stream
// slicing. It is single-core and not safe for concurrent use.
type Runner struct {
	fn      agg.Fn
	windows []window.Window
	sink    stream.Sink

	slides   []int64
	maxRange int64

	// store holds every slice's pre-aggregates plus the merge scratch
	// span windows are answered from.
	store *agg.Store

	cur    *slice // the open slice
	buf    []*slice
	head   int
	closed bool
	events int64
	merges int64 // slice merges performed (work counter)

	// slots maps group keys to dense slot indices; keys is the inverse.
	// Slicing has a single shared operator, so one grouping table is
	// faithful to how Scotty's slice store is keyed.
	slots map[uint64]int32
	keys  []uint64

	// mergeSpan is the scratch span instances are merged into; it is
	// clear between emissions.
	mergeSpan, mergeCap int32

	liveBuf   []int32
	finBuf    []float64
	resBuf    []stream.Result
	slicePool []*slice
}

// New builds a slicing runner for the window set. Holistic functions
// (MEDIAN) are supported the way Section III-A describes Scotty's
// support: the slice rows then hold all raw event values rather than
// constant-size sub-aggregates, so per-slice storage grows with data.
func New(set *window.Set, fn agg.Fn, sink stream.Sink) (*Runner, error) {
	if set == nil || set.Len() == 0 {
		return nil, fmt.Errorf("slicing: empty window set")
	}
	if sink == nil {
		return nil, fmt.Errorf("slicing: nil sink")
	}
	if !fn.Valid() {
		return nil, fmt.Errorf("slicing: invalid aggregate function %v", fn)
	}
	r := &Runner{fn: fn, sink: sink, slots: make(map[uint64]int32), store: agg.NewStore(fn)}
	for _, w := range set.Sorted() {
		if err := w.Validate(); err != nil {
			return nil, err
		}
		r.windows = append(r.windows, w)
		r.slides = append(r.slides, w.Slide)
		if w.Range > r.maxRange {
			r.maxRange = w.Range
		}
	}
	return r, nil
}

// SetParam sets the finalize-time parameter for parameterized aggregates
// (φ for PERCENTILE, k for TOPK; ignored otherwise). Call before
// processing; it only affects what finalization answers.
func (r *Runner) SetParam(p float64) { r.store.SetParam(p) }

// nextEdge returns the smallest slice edge strictly greater than t.
// Edges are the multiples of any window slide; computing the minimum over
// windows avoids materializing the edge set (whose period is the lcm of
// all slides and can be astronomically large).
func (r *Runner) nextEdge(t int64) int64 {
	next := int64(1) << 62
	for _, s := range r.slides {
		e := (t/s + 1) * s
		if e < next {
			next = e
		}
	}
	return next
}

// prevEdge returns the largest edge ≤ t.
func (r *Runner) prevEdge(t int64) int64 {
	prev := int64(0)
	for _, s := range r.slides {
		e := t / s * s
		if e > prev {
			prev = e
		}
	}
	return prev
}

// Process folds a batch of in-order events into the slice store, firing
// windows whose end edges are crossed; each event is one column write
// through the store's scalar kernel.
func (r *Runner) Process(events []stream.Event) {
	if r.closed {
		panic("slicing: Process after Close")
	}
	i := 0
	for i < len(events) {
		e := &events[i]
		if r.cur == nil {
			r.openSliceAt(e.Time)
		}
		for e.Time >= r.cur.end {
			r.roll()
		}
		sl := r.cur
		j := i
		for ; j < len(events) && events[j].Time < sl.end; j++ {
			slot := r.slot(events[j].Key)
			if slot >= sl.cap {
				sl.span, sl.cap = r.store.Grow(sl.span, sl.cap, slot+1)
			}
			r.store.AddAt(sl.span+slot, events[j].Value)
		}
		r.events += int64(j - i)
		i = j
	}
}

// slot returns the dense slot index for key, allocating one on first use.
func (r *Runner) slot(key uint64) int32 {
	if s, ok := r.slots[key]; ok {
		return s
	}
	s := int32(len(r.keys))
	r.slots[key] = s
	r.keys = append(r.keys, key)
	return s
}

// openSliceAt opens the slice containing t.
func (r *Runner) openSliceAt(t int64) {
	start := r.prevEdge(t)
	r.cur = r.newSlice(start, r.nextEdge(t))
}

// roll closes the current slice and advances one edge, firing windows at
// the crossed edge (a skipped edge may still end a window instance that
// holds older events, so the caller loops until the slice containing the
// next event is open; intervening slices are empty placeholders).
func (r *Runner) roll() {
	edge := r.cur.end
	r.closeCurrent()
	r.fireAt(edge)
	r.evict(edge)
	r.cur = r.newSlice(edge, r.nextEdge(edge))
}

// closeCurrent appends the open slice to the buffer.
func (r *Runner) closeCurrent() {
	r.buf = append(r.buf, r.cur)
	r.cur = nil
}

// fireAt emits every window instance ending exactly at edge e.
func (r *Runner) fireAt(e int64) {
	for _, w := range r.windows {
		start := e - w.Range
		if start < 0 || start%w.Slide != 0 {
			continue
		}
		r.emitInstance(w, start, e)
	}
}

// emitInstance merges the buffered slices spanning [start, end) into the
// scratch merge span and emits one result per key present.
func (r *Runner) emitInstance(w window.Window, start, end int64) {
	if r.mergeCap < int32(len(r.keys)) {
		// The scratch span is clear between emissions, so growth is a
		// plain reallocation, not a row move.
		if r.mergeCap > 0 {
			r.store.Release(r.mergeSpan, r.mergeCap)
		}
		r.mergeSpan, r.mergeCap = r.store.Alloc(int32(len(r.keys)))
	}
	touched := false
	for i := r.head; i < len(r.buf); i++ {
		sl := r.buf[i]
		if sl.end <= start {
			continue
		}
		if sl.start >= end {
			break
		}
		if sl.start < start || sl.end > end {
			panic(fmt.Sprintf("slicing: slice [%d,%d) straddles window [%d,%d)",
				sl.start, sl.end, start, end))
		}
		offs := r.store.AppendLive(sl.span, sl.cap, r.liveBuf[:0])
		r.liveBuf = offs
		for _, off := range offs {
			r.store.MergeRawAt(r.mergeSpan+off, r.store, sl.span+off)
			r.merges++
			touched = true
		}
	}
	if !touched {
		return
	}
	// Batch-finalize the merged span in one kernel call and assemble the
	// instance's rows in the recycled arena before a single EmitAll.
	offs := r.store.AppendLive(r.mergeSpan, r.mergeCap, r.liveBuf[:0])
	r.liveBuf = offs
	vals := r.store.FinalizeSpan(r.mergeSpan, offs, r.finBuf[:0])
	r.finBuf = vals
	rs := r.resBuf[:0]
	if cap(rs) < len(offs) {
		rs = make([]stream.Result, 0, len(offs))
	}
	for i, off := range offs {
		rs = append(rs, stream.Result{W: w, Start: start, End: end, Key: r.keys[off], Value: vals[i]})
	}
	r.resBuf = rs
	stream.EmitAll(r.sink, rs)
	r.store.Clear(r.mergeSpan, r.mergeCap)
	// Cap retained emission scratch after a high-cardinality burst,
	// mirroring the engine's egress buffer bound.
	if cap(r.resBuf) > egressRetain {
		r.resBuf = nil
	}
	if cap(r.finBuf) > egressRetain {
		r.finBuf = nil
	}
	if cap(r.liveBuf) > egressRetain {
		r.liveBuf = nil
	}
}

// egressRetain bounds the emission scratch kept across instance fires,
// in rows (see the engine's identically-named cap).
const egressRetain = 4096

// evict drops buffered slices no longer reachable by any future window
// instance: anything ending at or before e − maxRange.
func (r *Runner) evict(e int64) {
	for r.head < len(r.buf) && r.buf[r.head].end <= e-r.maxRange {
		r.releaseSlice(r.buf[r.head])
		r.buf[r.head] = nil
		r.head++
	}
	if r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	}
}

// Close flushes: the open slice is sealed and every pending window
// instance that already contains data fires at its natural end edge.
func (r *Runner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.cur == nil {
		return
	}
	lastData := r.cur.end
	r.closeCurrent()
	// Walk edges until every window instance overlapping the data has
	// ended: the farthest relevant edge is lastData + maxRange.
	for e := lastData; e <= lastData+r.maxRange; e = r.nextEdge(e) {
		r.fireAt(e)
	}
}

// Events returns the number of events processed.
func (r *Runner) Events() int64 { return r.events }

// Merges returns the number of per-key slice merges performed, the
// slicing analogue of the engine's TotalInputs work counter.
func (r *Runner) Merges() int64 { return r.merges }

// Run is a convenience wrapper: process all events and flush.
func Run(set *window.Set, fn agg.Fn, events []stream.Event, sink stream.Sink) (*Runner, error) {
	r, err := New(set, fn, sink)
	if err != nil {
		return nil, err
	}
	r.Process(events)
	r.Close()
	return r, nil
}

func (r *Runner) newSlice(start, end int64) *slice {
	need := int32(len(r.keys))
	if need < 1 {
		need = 1
	}
	var sl *slice
	if k := len(r.slicePool); k > 0 {
		sl = r.slicePool[k-1]
		r.slicePool = r.slicePool[:k-1]
	} else {
		sl = &slice{}
	}
	sl.start, sl.end = start, end
	sl.span, sl.cap = r.store.Alloc(need)
	return sl
}

func (r *Runner) releaseSlice(sl *slice) {
	r.store.Release(sl.span, sl.cap)
	sl.span, sl.cap = 0, 0
	r.slicePool = append(r.slicePool, sl)
}
