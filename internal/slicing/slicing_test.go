package slicing

import (
	"math/rand"
	"testing"

	"factorwindows/internal/agg"
	"factorwindows/internal/engine"
	"factorwindows/internal/plan"
	"factorwindows/internal/stream"
	"factorwindows/internal/window"
)

func steadyStream(ticks int64, keys int, r *rand.Rand) []stream.Event {
	events := make([]stream.Event, 0, ticks*int64(keys))
	for t := int64(0); t < ticks; t++ {
		for k := 0; k < keys; k++ {
			events = append(events, stream.Event{Time: t, Key: uint64(k), Value: float64(r.Intn(1000))})
		}
	}
	return events
}

// runOriginal evaluates the window set with the engine's original
// (independent) plan, the reference for slicing output.
func runOriginal(t *testing.T, set *window.Set, fn agg.Fn, events []stream.Event) []stream.Result {
	t.Helper()
	p, err := plan.NewOriginal(set, fn)
	if err != nil {
		t.Fatal(err)
	}
	sink := &stream.CollectingSink{}
	if _, err := engine.Run(p, events, sink); err != nil {
		t.Fatal(err)
	}
	return sink.Sorted()
}

func runSlicing(t *testing.T, set *window.Set, fn agg.Fn, events []stream.Event) []stream.Result {
	t.Helper()
	sink := &stream.CollectingSink{}
	if _, err := Run(set, fn, events, sink); err != nil {
		t.Fatal(err)
	}
	return sink.Sorted()
}

func sameResults(t *testing.T, label string, got, want []stream.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestSlicingMatchesEngineTumbling(t *testing.T) {
	set := window.MustSet(window.Tumbling(4), window.Tumbling(6), window.Tumbling(10))
	r := rand.New(rand.NewSource(1))
	events := steadyStream(60, 2, r)
	for _, fn := range []agg.Fn{agg.Min, agg.Max, agg.Sum, agg.Count} {
		sameResults(t, fn.String(),
			runSlicing(t, set, fn, events), runOriginal(t, set, fn, events))
	}
}

func TestSlicingMatchesEngineHopping(t *testing.T) {
	set := window.MustSet(window.Hopping(8, 2), window.Hopping(12, 4), window.Tumbling(6))
	r := rand.New(rand.NewSource(2))
	events := steadyStream(50, 3, r)
	for _, fn := range []agg.Fn{agg.Min, agg.Sum, agg.Avg, agg.StdDev} {
		sameResults(t, fn.String(),
			runSlicing(t, set, fn, events), runOriginal(t, set, fn, events))
	}
}

func TestSlicingRandomSets(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		set := &window.Set{}
		n := r.Intn(4) + 2
		for set.Len() < n {
			s := int64(r.Intn(6) + 1)
			k := int64(r.Intn(4) + 1)
			w := window.Window{Range: s * k, Slide: s}
			if !set.Contains(w) {
				_ = set.Add(w)
			}
		}
		events := steadyStream(int64(r.Intn(80)+20), r.Intn(3)+1, r)
		fn := agg.ShareableFns()[r.Intn(len(agg.ShareableFns()))]
		sameResults(t, set.String()+" "+fn.String(),
			runSlicing(t, set, fn, events), runOriginal(t, set, fn, events))
	}
}

func TestSlicingSparseStream(t *testing.T) {
	// Large gaps between events force edge-by-edge catch-up; windows
	// containing old data must still fire at skipped edges.
	set := window.MustSet(window.Hopping(20, 5), window.Tumbling(10))
	events := []stream.Event{
		{Time: 3, Key: 1, Value: 7},
		{Time: 64, Key: 1, Value: 9},
		{Time: 190, Key: 2, Value: 1},
	}
	for _, fn := range []agg.Fn{agg.Min, agg.Sum} {
		sameResults(t, fn.String(),
			runSlicing(t, set, fn, events), runOriginal(t, set, fn, events))
	}
}

func TestSlicingSupportsHolisticViaRawSlices(t *testing.T) {
	// Section III-A: slicing can evaluate holistic functions by keeping
	// all raw events per slice. MEDIAN results must match the engine's
	// original plan (which also evaluates MEDIAN from raw events).
	set := window.MustSet(window.Hopping(8, 2), window.Tumbling(6))
	r := rand.New(rand.NewSource(77))
	events := steadyStream(60, 2, r)
	sameResults(t, "median",
		runSlicing(t, set, agg.Median, events), runOriginal(t, set, agg.Median, events))
	if _, err := New(window.MustSet(window.Tumbling(4)), agg.Fn(99), &stream.CountingSink{}); err == nil {
		t.Fatal("invalid function must be rejected")
	}
}

func TestSlicingRejectsEmptyAndNil(t *testing.T) {
	if _, err := New(&window.Set{}, agg.Min, &stream.CountingSink{}); err == nil {
		t.Fatal("empty set must fail")
	}
	if _, err := New(window.MustSet(window.Tumbling(4)), agg.Min, nil); err == nil {
		t.Fatal("nil sink must fail")
	}
}

func TestSlicingLifecycle(t *testing.T) {
	r, err := New(window.MustSet(window.Tumbling(4)), agg.Min, &stream.CountingSink{})
	if err != nil {
		t.Fatal(err)
	}
	r.Process([]stream.Event{{Time: 0, Key: 0, Value: 1}})
	r.Close()
	r.Close()
	if r.Events() != 1 {
		t.Fatalf("events = %d", r.Events())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Process after Close must panic")
		}
	}()
	r.Process([]stream.Event{{Time: 5, Key: 0, Value: 1}})
}

func TestSlicingSharesWork(t *testing.T) {
	// With many overlapping windows, slicing must do far fewer state
	// updates than the original plan's per-window event assignment.
	set := window.MustSet(window.Hopping(20, 2), window.Hopping(40, 2), window.Hopping(60, 2))
	r := rand.New(rand.NewSource(4))
	events := steadyStream(600, 1, r)

	s, err := Run(set, agg.Min, events, &stream.CountingSink{})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := plan.NewOriginal(set, agg.Min)
	e, err := engine.Run(p, events, &stream.CountingSink{})
	if err != nil {
		t.Fatal(err)
	}
	// Engine work: one state update per (event, covered instance).
	// Slicing work: one Add per event plus one Merge per (instance,
	// covered slice, key).
	slicingWork := s.Events() + s.Merges()
	engineWork := e.TotalUpdates()
	if slicingWork >= engineWork {
		t.Fatalf("slicing work %d not below original plan inputs %d", slicingWork, engineWork)
	}
}

func TestEdgeHelpers(t *testing.T) {
	r, err := New(window.MustSet(window.Tumbling(4), window.Hopping(6, 3)), agg.Min, &stream.CountingSink{})
	if err != nil {
		t.Fatal(err)
	}
	// Edges: multiples of 4 and 3: 0,3,4,6,8,9,12...
	cases := []struct{ t, next, prev int64 }{
		{0, 3, 0}, {3, 4, 3}, {4, 6, 4}, {5, 6, 4}, {10, 12, 9},
	}
	for _, c := range cases {
		if got := r.nextEdge(c.t); got != c.next {
			t.Errorf("nextEdge(%d) = %d, want %d", c.t, got, c.next)
		}
		if got := r.prevEdge(c.t); got != c.prev {
			t.Errorf("prevEdge(%d) = %d, want %d", c.t, got, c.prev)
		}
	}
}
