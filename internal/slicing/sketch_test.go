package slicing

import (
	"math"
	"math/rand"
	"testing"

	"factorwindows/internal/agg"
	"factorwindows/internal/engine"
	"factorwindows/internal/plan"
	"factorwindows/internal/stream"
	"factorwindows/internal/window"
)

// TestSlicingSketchMatchesEngine pins the slice-merge path for the
// sketch-backed aggregates. At this scale no sketch compacts or evicts
// (few values per instance, value domain under the top-k capacity), so
// pane merging is bit-deterministic and slicing must equal the engine's
// original plan exactly; HLL distinct is register-exact at any scale.
func TestSlicingSketchMatchesEngine(t *testing.T) {
	set := window.MustSet(window.Hopping(8, 4), window.Tumbling(12))
	r := rand.New(rand.NewSource(7))
	var events []stream.Event
	tick := int64(0)
	for i := 0; i < 1200; i++ {
		tick += int64(r.Intn(3))
		events = append(events, stream.Event{
			Time: tick, Key: uint64(r.Intn(4)), Value: float64(r.Intn(30)),
		})
	}

	for _, tc := range []struct {
		fn    agg.Fn
		param float64
	}{
		{agg.Percentile, 0.9},
		{agg.Distinct, 0},
		{agg.TopK, 2},
	} {
		p, err := plan.NewOriginal(set, tc.fn)
		if err != nil {
			t.Fatal(err)
		}
		p.Param = tc.param
		want := &stream.CollectingSink{}
		if _, err := engine.Run(p, events, want); err != nil {
			t.Fatal(err)
		}

		got := &stream.CollectingSink{}
		run, err := New(set, tc.fn, got)
		if err != nil {
			t.Fatal(err)
		}
		run.SetParam(tc.param)
		run.Process(events)
		run.Close()

		a, b := got.Sorted(), want.Sorted()
		if len(a) != len(b) {
			t.Fatalf("%v: %d rows, engine %d", tc.fn, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] && !(math.IsNaN(a[i].Value) && math.IsNaN(b[i].Value) &&
				a[i].W == b[i].W && a[i].Start == b[i].Start && a[i].Key == b[i].Key) {
				t.Fatalf("%v: row %d = %+v, engine %+v", tc.fn, i, a[i], b[i])
			}
		}
	}
}
