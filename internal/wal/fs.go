// Filesystem seam for the write-ahead log. Every byte the WAL persists
// goes through the FS interface, so the recovery code paths can be
// property-tested under injected faults (failed or short writes, failed
// fsyncs, failed renames) without a real disk misbehaving on cue — the
// fault-injection harness in wal_test.go wraps OS with exactly those
// failures. Production code uses OS, a thin veneer over package os.

package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the part of *os.File the log needs: sequential reads and
// writes plus a durability barrier.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
}

// FS abstracts the directory the log lives in. Paths are always joined
// under the log directory by the caller; implementations get absolute
// paths and need no state beyond what the OS provides.
type FS interface {
	MkdirAll(path string) error
	// Create opens path for writing, truncating any previous content.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// ReadDir lists the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// Truncate cuts path to size bytes (torn-tail repair).
	Truncate(path string, size int64) error
	// Size reports path's current length in bytes.
	Size(path string) (int64, error)
	// SyncDir fsyncs the directory itself, making renames and creates
	// durable (on POSIX the directory entry is metadata of the parent).
	SyncDir(dir string) error
}

// OS is the production FS over package os.
type OS struct{}

func (OS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (OS) Create(path string) (File, error) { return os.Create(path) }

func (OS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OS) Open(path string) (File, error) { return os.Open(path) }

func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (OS) Remove(path string) error { return os.Remove(path) }

func (OS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OS) Size(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
