// Package wal is the durable ingest log behind the serving layer: every
// accepted ingest batch (and registry mutation) is appended as one
// length-prefixed record before the client is acked, so a crash loses at
// most the unacked tail and restart = latest snapshot + deterministic
// replay of the log tail.
//
// Records reuse the internal/wire columnar frame encoding verbatim —
// event batches are event frames, registry mutations are control frames
// — so the binary ingest path logs with a memcpy-shaped encode and
// replay decodes with the same zero-copy reader the wire path uses.
//
// # Group commit
//
// Appends stage into an in-memory buffer under a short lock and return a
// Commit ticket; one committer goroutine writes everything staged since
// its last pass in a single segment write and (under FsyncEvery) a
// single fsync, then acks every ticket it covered. Concurrent ingest
// batches therefore amortize one fsync across the group — callers block
// on Commit.Wait, not on each other's disk latency.
//
// # Segments and the manifest hash chain
//
// The log is a sequence of segment files, seg-<base>.wal, where <base>
// is the offset (record index) of the segment's first record. When the
// active segment reaches Options.SegmentBytes it is sealed: fsynced,
// content-hashed, and recorded in the MANIFEST file as a JSON line whose
// Chain field is sha256(prev chain ‖ entry), making the sealed history
// tamper-evident: altering any sealed byte, reordering entries, or
// dropping a segment without its chained "drop" entry breaks
// verification at Open. The active segment is the only file the
// manifest does not yet cover; its tail may be torn by a crash and is
// truncated at the first incomplete record on recovery. Corruption
// anywhere else — a sealed segment whose bytes do not match the
// manifest hash, a broken chain — is reported, never silently replayed.
//
// # Snapshots
//
// Snapshots are offset-stamped state blobs written beside the segments
// (snap-<offset>.fws, checksummed, temp+rename). A snapshot at offset N
// asserts "this state reflects records [0, N)", so recovery loads the
// newest valid snapshot and replays only the records at or after its
// offset; TruncateBefore then retires whole segments below it, keeping
// both checkpoint cost and replay time proportional to the tail, not
// the total history.
package wal

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factorwindows/internal/stream"
	"factorwindows/internal/wire"
)

// FsyncPolicy says when appended records reach stable storage.
type FsyncPolicy int

const (
	// FsyncEvery fsyncs once per group commit: every acked record is
	// durable (Commit.Wait reports durable=true).
	FsyncEvery FsyncPolicy = iota
	// FsyncInterval acks after the OS write and fsyncs in the background
	// at most every Options.FsyncInterval: a crash can lose the last
	// interval's records, all of which were acked durable=false.
	FsyncInterval
	// FsyncOff never fsyncs during appends (close still does): the OS
	// page cache decides durability. For benchmarks and bulk loads.
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncEvery:
		return "every"
	case FsyncInterval:
		return "interval"
	default:
		return "off"
	}
}

// ParseFsyncPolicy parses the -fsync flag forms: every, interval, off.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "every", "":
		return FsyncEvery, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want every, interval or off)", s)
	}
}

// Typed open/recovery errors. Both mean the log's sealed history cannot
// be trusted and must never be silently replayed.
var (
	ErrCorruptManifest = errors.New("wal: manifest hash chain broken")
	ErrCorruptSegment  = errors.New("wal: sealed segment does not match its manifest entry")
	ErrClosed          = errors.New("wal: log closed")
)

// Options configures a Log.
type Options struct {
	// Dir is the log directory (segments, MANIFEST, snapshots).
	Dir string
	// Fsync is the durability policy for appends.
	Fsync FsyncPolicy
	// FsyncInterval is the background sync cadence under FsyncInterval
	// (default 50ms).
	FsyncInterval time.Duration
	// SegmentBytes is the rotation threshold (default 64 MiB). Rotation
	// is checked between group commits, so segments may overshoot by one
	// commit's worth.
	SegmentBytes int64
	// MinOffset raises the log's next record offset at open: recovery
	// passes the latest snapshot's offset so record numbering never
	// collides with records the snapshot already covers but a lax fsync
	// policy lost from the tail.
	MinOffset int64
	// StagedBytes bounds the staged-but-unwritten backlog (default
	// 8 MiB). When the committer cannot keep up, appends block until a
	// flush drains the buffer — bounded memory under sustained overload
	// instead of an unbounded in-process queue.
	StagedBytes int64
	// RetryAttempts is how many times a failed segment write or fsync
	// is retried (with exponential backoff starting at RetryBackoff)
	// before the log fail-stops. Zero preserves strict fail-fast. A
	// partial write resumes where it left off, and accounting (hash,
	// byte counts) tracks exactly the bytes that reached the file, so a
	// final failure leaves a truncatable torn tail, never a mis-hashed
	// segment. Retrying an fsync is only a best effort — a kernel may
	// have dropped the dirty pages the first failure covered — which is
	// why the budget is bounded and exhaustion still fail-stops rather
	// than limping on.
	RetryAttempts int
	// RetryBackoff is the first retry's backoff, doubling per attempt
	// (default 1ms).
	RetryBackoff time.Duration
	// FS overrides the filesystem (fault-injection tests); nil uses OS.
	FS FS
}

const (
	segPrefix     = "seg-"
	segSuffix     = ".wal"
	manifestName  = "MANIFEST"
	snapPrefix    = "snap-"
	snapSuffix    = ".fws"
	snapTmpSuffix = ".tmp"

	defaultSegmentBytes  = 64 << 20
	defaultFsyncInterval = 50 * time.Millisecond
	defaultStagedBytes   = 8 << 20

	// stagedRetain bounds the recycled staging buffer capacity so one
	// burst does not pin its high-water mark for the log's lifetime.
	stagedRetain = 1 << 22
)

// manifestEntry is one line of the MANIFEST file. Op "seal" freezes a
// completed segment under its content hash; op "drop" records that a
// sealed segment was retired by log truncation (its bytes are gone, but
// the chain over its metadata remains verifiable). Chain commits the
// entry and everything before it: sha256(prev chain bytes ‖ the entry's
// JSON with Chain empty).
type manifestEntry struct {
	Seq     int    `json:"seq"`
	Op      string `json:"op"`
	File    string `json:"file"`
	Base    int64  `json:"base"`
	Records int64  `json:"records"`
	Bytes   int64  `json:"bytes,omitempty"`
	Hash    string `json:"hash,omitempty"`
	Prev    string `json:"prev,omitempty"`
	Chain   string `json:"chain"`
}

// chainHash computes an entry's Chain from the previous chain value.
func chainHash(prev []byte, e manifestEntry) string {
	e.Chain = ""
	body, err := json.Marshal(e)
	if err != nil {
		panic("wal: marshaling manifest entry: " + err.Error())
	}
	h := sha256.New()
	h.Write(prev)
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// Commit is one staged record's durability ticket.
type Commit struct {
	offset  int64
	done    chan struct{}
	durable bool
	err     error
}

// Offset is the record's log offset (its replay position).
func (c *Commit) Offset() int64 { return c.offset }

// Wait blocks until the record's group commit completes. durable is true
// when the record is known to be on stable storage (FsyncEvery); under
// the lax policies the record has been written but not yet fsynced. A
// non-nil error means the write failed and the log is fail-stopped.
func (c *Commit) Wait() (durable bool, err error) {
	<-c.done
	return c.durable, c.err
}

// LogStats is a point-in-time counter snapshot for /stats.
type LogStats struct {
	// Appended counts records appended by this process.
	Appended int64
	// Fsyncs counts segment fsyncs issued by this process.
	Fsyncs int64
	// NextOffset is the offset the next appended record will get; equal
	// to the total record count when the numbering has no snapshot gap.
	NextOffset int64
	// Retries counts write/fsync attempts that were retried after a
	// transient failure (degraded-mode telemetry).
	Retries int64
	// StagedPeak is the high-water mark of the staged-but-unwritten
	// backlog in bytes; bounded by Options.StagedBytes plus one record.
	StagedPeak int64
}

// Log is the write-ahead log. Appends are safe for concurrent use;
// Replay must complete before the first Append (the recovery sequence
// does exactly that), and Close must not race Append.
type Log struct {
	opts Options
	fs   FS

	mu         sync.Mutex // guards the staging state below
	drained    sync.Cond  // on mu; signaled when the committer takes staged
	staged     []byte     // encoded frames awaiting the committer
	stagedRecs int64
	waiters    []*Commit
	nextRec    int64
	appended   int64
	err        error // sticky write failure: the log is fail-stopped
	closed     bool
	started    bool

	stagedPeak int64 // high-water mark of len(staged), under mu

	kickCh chan struct{}
	quit   chan struct{}
	done   chan struct{}

	fsyncs  atomic.Int64
	retries atomic.Int64 // write/fsync attempts retried after a failure

	// Committer-owned file state (fileMu only where it meets the
	// manifest: seal/rotate vs TruncateBefore).
	seg       File
	segName   string
	segBase   int64
	segRecs   int64
	segBytes  int64
	segHasher interface {
		io.Writer
		Sum([]byte) []byte
		Reset()
	}
	dirty bool // bytes written since the last fsync

	fileMu      sync.Mutex
	manifest    File
	manifestSeq int
	chain       []byte // last chain hash, raw bytes (nil before any entry)
	sealed      []manifestEntry
}

func segFileName(base int64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix)
}

func snapFileName(offset int64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, offset, snapSuffix)
}

func parseBase(name, prefix, suffix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 63)
	if err != nil {
		return 0, false
	}
	return int64(v), true
}

// Open opens (or creates) the log in opts.Dir, verifying the manifest
// hash chain and every live sealed segment's content hash, and
// truncating a torn tail off the active segment. It fails — rather than
// replaying anything — when the sealed history does not verify.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = defaultFsyncInterval
	}
	if opts.StagedBytes <= 0 {
		opts.StagedBytes = defaultStagedBytes
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = time.Millisecond
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = OS{}
	}
	if err := fsys.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	l := &Log{
		opts:      opts,
		fs:        fsys,
		kickCh:    make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		segHasher: sha256.New(),
	}
	l.drained.L = &l.mu

	entries, err := l.readManifest()
	if err != nil {
		return nil, err
	}
	dropped := make(map[string]bool)
	var expectedBase int64
	for _, e := range entries {
		switch e.Op {
		case "seal":
			l.sealed = append(l.sealed, e)
			if end := e.Base + e.Records; end > expectedBase {
				expectedBase = end
			}
		case "drop":
			dropped[e.File] = true
		case "skip":
			// A recorded numbering realignment (see the MinOffset handling
			// below): offsets [expectedBase, e.Base) were covered by a
			// snapshot but lost from the log tail.
			if e.Base > expectedBase {
				expectedBase = e.Base
			}
		default:
			return nil, fmt.Errorf("%w: unknown manifest op %q", ErrCorruptManifest, e.Op)
		}
	}
	live := l.sealed[:0]
	for _, e := range l.sealed {
		if !dropped[e.File] {
			live = append(live, e)
		}
	}
	l.sealed = live
	if err := l.verifySealed(); err != nil {
		return nil, err
	}

	names, err := fsys.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", opts.Dir, err)
	}
	liveNames := make(map[string]bool, len(l.sealed))
	for _, e := range l.sealed {
		liveNames[e.File] = true
	}
	activeName := segFileName(expectedBase)
	for _, name := range names {
		base, ok := parseBase(name, segPrefix, segSuffix)
		if !ok {
			continue
		}
		if liveNames[name] || dropped[name] || name == activeName {
			continue
		}
		return nil, fmt.Errorf("%w: segment %s (base %d) is neither sealed nor the active segment %s",
			ErrCorruptManifest, name, base, activeName)
	}

	// The manifest must be open for append before anything below can
	// seal a segment into it.
	mf, err := fsys.OpenAppend(filepath.Join(opts.Dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("wal: opening manifest: %w", err)
	}
	l.manifest = mf

	// Recover the active segment: scan valid frames, truncate the torn
	// tail, and rebuild its running content hash for a later seal.
	activeRecs, err := l.recoverActive(activeName)
	if err != nil {
		mf.Close()
		return nil, err
	}
	l.segBase = expectedBase
	l.segRecs = activeRecs
	l.nextRec = expectedBase + activeRecs

	if opts.MinOffset > l.nextRec {
		// The numbering must resume at or past the snapshot the caller
		// recovered from, even if a lax fsync policy lost log tail behind
		// it: seal whatever the active segment holds and restart the
		// numbering in a fresh segment at the snapshot offset.
		if l.segRecs > 0 {
			f, err := fsys.OpenAppend(filepath.Join(opts.Dir, l.segName))
			if err != nil {
				mf.Close()
				return nil, fmt.Errorf("wal: reopening active segment: %w", err)
			}
			l.seg = f
			if err := l.sealActive(); err != nil {
				mf.Close()
				return nil, err
			}
		} else if l.segName != "" {
			// recoverActive found an empty active file; leaving it behind
			// would look like an unaccounted segment on the next open.
			if err := fsys.Remove(filepath.Join(opts.Dir, l.segName)); err != nil {
				mf.Close()
				return nil, fmt.Errorf("wal: removing empty segment: %w", err)
			}
		}
		// Record the realignment in the chain, or the next open would
		// compute the old expected base and flag the new active segment
		// as unaccounted for.
		skip := manifestEntry{Op: "skip", Base: opts.MinOffset}
		l.fileMu.Lock()
		err := l.appendManifest(&skip)
		l.fileMu.Unlock()
		if err != nil {
			mf.Close()
			return nil, err
		}
		l.segBase = opts.MinOffset
		l.segRecs, l.segBytes = 0, 0
		l.segHasher.Reset()
		l.nextRec = opts.MinOffset
	}
	if l.seg == nil {
		l.segName = segFileName(l.segBase)
		f, err := fsys.OpenAppend(filepath.Join(opts.Dir, l.segName))
		if err != nil {
			mf.Close()
			return nil, fmt.Errorf("wal: opening active segment: %w", err)
		}
		if err := fsys.SyncDir(opts.Dir); err != nil {
			f.Close()
			mf.Close()
			return nil, fmt.Errorf("wal: syncing %s: %w", opts.Dir, err)
		}
		l.seg = f
	}
	return l, nil
}

// readManifest parses and chain-verifies the MANIFEST file. A torn final
// line (a crash during a seal) is truncated away; an invalid line
// anywhere else, or any chain mismatch, is corruption.
func (l *Log) readManifest() ([]manifestEntry, error) {
	path := filepath.Join(l.opts.Dir, manifestName)
	f, err := l.fs.Open(path)
	if err != nil {
		return nil, nil // no manifest yet: empty log
	}
	data, rerr := io.ReadAll(f)
	f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("wal: reading manifest: %w", rerr)
	}
	var (
		entries []manifestEntry
		prev    []byte
		goodLen int
	)
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No newline: a torn trailing append. Cut it.
			break
		}
		line := data[off : off+nl]
		var e manifestEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if off+nl+1 >= len(data) {
				break // unparseable final line: torn append
			}
			return nil, fmt.Errorf("%w: manifest line %d does not parse: %v", ErrCorruptManifest, len(entries)+1, err)
		}
		if e.Seq != len(entries)+1 {
			return nil, fmt.Errorf("%w: manifest line %d carries seq %d", ErrCorruptManifest, len(entries)+1, e.Seq)
		}
		if e.Prev != hex.EncodeToString(prev) {
			return nil, fmt.Errorf("%w: entry %d prev hash mismatch", ErrCorruptManifest, e.Seq)
		}
		if chainHash(prev, e) != e.Chain {
			return nil, fmt.Errorf("%w: entry %d chain hash mismatch", ErrCorruptManifest, e.Seq)
		}
		chainBytes, err := hex.DecodeString(e.Chain)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d chain not hex", ErrCorruptManifest, e.Seq)
		}
		prev = chainBytes
		entries = append(entries, e)
		off += nl + 1
		goodLen = off
	}
	if goodLen < len(data) {
		if err := l.fs.Truncate(path, int64(goodLen)); err != nil {
			return nil, fmt.Errorf("wal: truncating torn manifest tail: %w", err)
		}
	}
	l.manifestSeq = len(entries)
	l.chain = prev
	return entries, nil
}

// verifySealed checks every live sealed segment byte-for-byte against
// its manifest entry.
func (l *Log) verifySealed() error {
	for _, e := range l.sealed {
		path := filepath.Join(l.opts.Dir, e.File)
		size, err := l.fs.Size(path)
		if err != nil {
			return fmt.Errorf("%w: segment %s missing: %v", ErrCorruptSegment, e.File, err)
		}
		if size != e.Bytes {
			return fmt.Errorf("%w: segment %s is %d bytes, manifest says %d", ErrCorruptSegment, e.File, size, e.Bytes)
		}
		f, err := l.fs.Open(path)
		if err != nil {
			return fmt.Errorf("%w: segment %s: %v", ErrCorruptSegment, e.File, err)
		}
		h := sha256.New()
		_, cerr := io.Copy(h, f)
		f.Close()
		if cerr != nil {
			return fmt.Errorf("%w: segment %s: %v", ErrCorruptSegment, e.File, cerr)
		}
		if hex.EncodeToString(h.Sum(nil)) != e.Hash {
			return fmt.Errorf("%w: segment %s content hash mismatch", ErrCorruptSegment, e.File)
		}
	}
	return nil
}

// recoverActive scans the active segment (if present), truncating a
// torn tail: an incomplete final record, or a zero-filled tail left by
// a crashed filesystem. Garbage that is neither is corruption. It
// returns the number of valid records and leaves the file closed (Open
// reopens it for append) with the running hash primed.
func (l *Log) recoverActive(name string) (int64, error) {
	path := filepath.Join(l.opts.Dir, name)
	f, err := l.fs.Open(path)
	if err != nil {
		return 0, nil // not created yet
	}
	data, rerr := io.ReadAll(f)
	f.Close()
	if rerr != nil {
		return 0, fmt.Errorf("wal: reading active segment: %w", rerr)
	}
	valid := 0
	recs := int64(0)
	rest := data
	for len(rest) > 0 {
		_, next, err := wire.Decode(rest)
		if err != nil {
			if errors.Is(err, wire.ErrShort) || allZero(rest) {
				break // torn or zero-filled tail: truncate
			}
			return 0, fmt.Errorf("%w: active segment %s invalid at byte %d: %v",
				ErrCorruptSegment, name, valid, err)
		}
		valid = len(data) - len(next)
		rest = next
		recs++
	}
	if valid < len(data) {
		if err := l.fs.Truncate(path, int64(valid)); err != nil {
			return 0, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	l.segName = name
	l.segBytes = int64(valid)
	l.segHasher.Reset()
	l.segHasher.Write(data[:valid])
	return recs, nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Append stages one event batch as a single record and returns its
// commit ticket. The events are encoded before Append returns, so the
// caller may recycle the slice immediately.
func (l *Log) Append(events []stream.Event) (*Commit, error) {
	if len(events) > wire.MaxFrameRows {
		return nil, fmt.Errorf("wal: batch of %d events exceeds the %d-row record bound", len(events), wire.MaxFrameRows)
	}
	return l.stage(func(dst []byte) []byte { return wire.AppendEventFrame(dst, events) })
}

// AppendControl stages one control record (a registry mutation) with
// the given payload.
func (l *Log) AppendControl(payload []byte) (*Commit, error) {
	return l.stage(func(dst []byte) []byte { return wire.AppendControlFrame(dst, 0, payload) })
}

func (l *Log) stage(enc func([]byte) []byte) (*Commit, error) {
	l.mu.Lock()
	for {
		if l.closed {
			l.mu.Unlock()
			return nil, ErrClosed
		}
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return nil, fmt.Errorf("wal: log fail-stopped: %w", err)
		}
		if int64(len(l.staged)) < l.opts.StagedBytes {
			break
		}
		// Backpressure: the committer is behind the appenders. Block
		// until a flush drains the staging buffer so the backlog stays
		// bounded instead of queueing without limit in memory.
		l.drained.Wait()
	}
	l.staged = enc(l.staged)
	if n := int64(len(l.staged)); n > l.stagedPeak {
		l.stagedPeak = n
	}
	l.stagedRecs++
	c := &Commit{offset: l.nextRec, done: make(chan struct{})}
	l.nextRec++
	l.appended++
	l.waiters = append(l.waiters, c)
	if !l.started {
		l.started = true
		go l.run()
	}
	l.mu.Unlock()
	select {
	case l.kickCh <- struct{}{}:
	default:
	}
	return c, nil
}

// run is the committer loop: each pass writes everything staged since
// the last one in a single segment write (and one fsync under
// FsyncEvery), acks the covered tickets, and rotates the segment when
// it crossed the size threshold. Under FsyncInterval a ticker syncs
// written-but-unsynced bytes in the background.
func (l *Log) run() {
	defer close(l.done)
	var tick <-chan time.Time
	if l.opts.Fsync == FsyncInterval {
		t := time.NewTicker(l.opts.FsyncInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-l.quit:
			return
		case <-tick:
			l.syncNow()
		case <-l.kickCh:
			l.flush()
		}
	}
}

// flush performs one group commit.
func (l *Log) flush() {
	l.mu.Lock()
	buf, ws, recs := l.staged, l.waiters, l.stagedRecs
	l.staged = nil
	l.waiters = nil
	l.stagedRecs = 0
	l.drained.Broadcast()
	l.mu.Unlock()
	if len(buf) == 0 && len(ws) == 0 {
		return
	}

	var err error
	if len(buf) > 0 {
		if err = l.writeRetry(buf); err == nil {
			l.segRecs += recs
		}
	}
	durable := false
	if err == nil && l.opts.Fsync == FsyncEvery && l.dirty {
		if err = l.syncRetry(); err == nil {
			durable = true
		}
	}
	// Rotate before acking: a ticket's channel close is the only
	// happens-before edge appenders get, so every committer-state
	// mutation — including rotation's — must precede it (Replay reads
	// the active-segment fields after commits are acked). A rotation
	// failure does not taint these tickets: their records are already
	// written (and fsynced, under every) in the still-unsealed segment,
	// which recovery replays as the active tail; later appends hit the
	// fail-stop.
	var rotateErr error
	if err == nil && l.segBytes >= l.opts.SegmentBytes && l.segRecs > 0 {
		rotateErr = l.rotate()
	}
	for _, c := range ws {
		c.durable, c.err = durable, err
		close(c.done)
	}
	if err != nil {
		l.fail(err)
		return
	}
	if rotateErr != nil {
		l.fail(rotateErr)
		return
	}
	if cap(buf) <= stagedRetain {
		l.mu.Lock()
		if l.staged == nil {
			l.staged = buf[:0]
		}
		l.mu.Unlock()
	}
}

// writeRetry writes buf to the active segment, resuming after partial
// writes and retrying transient failures up to the configured budget.
// The hasher, byte count, and dirty flag track exactly the bytes that
// reached the file, so an eventual failure leaves a truncatable torn
// tail — never a segment whose recorded hash disagrees with its bytes.
func (l *Log) writeRetry(buf []byte) error {
	backoff := l.opts.RetryBackoff
	attempts := 0
	for len(buf) > 0 {
		n, err := l.seg.Write(buf)
		if n > 0 {
			l.segHasher.Write(buf[:n])
			l.segBytes += int64(n)
			l.dirty = true
			buf = buf[n:]
		}
		if len(buf) == 0 {
			// Every byte landed; any error that rode along is moot.
			return nil
		}
		if err == nil {
			if n > 0 {
				continue // short write with progress: resume at once
			}
			err = io.ErrShortWrite // zero-progress nil-error writer
		}
		if attempts >= l.opts.RetryAttempts {
			return err
		}
		attempts++
		l.retries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
	return nil
}

// syncRetry fsyncs the active segment, retrying transient failures up
// to the configured budget. A successful sync clears the dirty flag;
// exhaustion returns the last error for the caller to fail-stop on.
func (l *Log) syncRetry() error {
	backoff := l.opts.RetryBackoff
	for attempts := 0; ; attempts++ {
		err := l.seg.Sync()
		if err == nil {
			l.fsyncs.Add(1)
			l.dirty = false
			return nil
		}
		if attempts >= l.opts.RetryAttempts {
			return err
		}
		l.retries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
}

// syncNow flushes written-but-unsynced bytes (FsyncInterval's ticker and
// Close both land here).
func (l *Log) syncNow() {
	if !l.dirty || l.seg == nil {
		return
	}
	if err := l.syncRetry(); err != nil {
		l.fail(err)
	}
}

// fail fail-stops the log: the sticky error rejects every later append,
// and any tickets staged after the failing write are acked with it.
func (l *Log) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	ws := l.waiters
	l.waiters = nil
	l.staged = nil
	l.stagedRecs = 0
	l.drained.Broadcast()
	l.mu.Unlock()
	for _, c := range ws {
		c.durable, c.err = false, err
		close(c.done)
	}
}

// rotate seals the active segment and opens the next one.
func (l *Log) rotate() error {
	if err := l.sealActive(); err != nil {
		return err
	}
	base := l.segBase + l.segRecs
	name := segFileName(base)
	f, err := l.fs.OpenAppend(filepath.Join(l.opts.Dir, name))
	if err != nil {
		return fmt.Errorf("wal: opening segment %s: %w", name, err)
	}
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing %s: %w", l.opts.Dir, err)
	}
	l.seg = f
	l.segName = name
	l.segBase = base
	l.segRecs, l.segBytes = 0, 0
	l.segHasher.Reset()
	l.dirty = false
	return nil
}

// sealActive fsyncs the active segment and records it in the manifest
// under its content hash. The segment's bytes must be durable before
// the manifest asserts their hash, so the seal always syncs regardless
// of the append policy. The caller arranges for the next segment (or
// closes the log).
func (l *Log) sealActive() error {
	if err := l.syncRetry(); err != nil {
		return fmt.Errorf("wal: syncing segment before seal: %w", err)
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: closing sealed segment: %w", err)
	}
	l.seg = nil
	e := manifestEntry{
		Op:      "seal",
		File:    l.segName,
		Base:    l.segBase,
		Records: l.segRecs,
		Bytes:   l.segBytes,
		Hash:    hex.EncodeToString(l.segHasher.Sum(nil)),
	}
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	if err := l.appendManifest(&e); err != nil {
		return err
	}
	l.sealed = append(l.sealed, e)
	return nil
}

// appendManifest chains and durably appends one entry. Callers hold
// fileMu.
func (l *Log) appendManifest(e *manifestEntry) error {
	e.Seq = l.manifestSeq + 1
	e.Prev = hex.EncodeToString(l.chain)
	e.Chain = chainHash(l.chain, *e)
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("wal: marshaling manifest entry: %w", err)
	}
	if _, err := l.manifest.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("wal: appending manifest entry: %w", err)
	}
	if err := l.manifest.Sync(); err != nil {
		return fmt.Errorf("wal: syncing manifest: %w", err)
	}
	chainBytes, _ := hex.DecodeString(e.Chain)
	l.chain = chainBytes
	l.manifestSeq = e.Seq
	return nil
}

// Record is one replayed log record: its offset and the decoded frame
// view (valid only during the callback, like any wire.Frame).
type Record struct {
	Offset int64
	Frame  wire.Frame
}

// Replay streams every record with offset >= from, sealed segments
// first, then the recovered active segment, in offset order. It must
// not overlap in-flight appends: recovery runs it before the first
// Append, and any later replay must wait until every outstanding
// commit has been acked (Wait returned).
func (l *Log) Replay(from int64, fn func(Record) error) error {
	entries := append([]manifestEntry(nil), l.sealed...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Base < entries[j].Base })
	for _, e := range entries {
		if e.Base+e.Records <= from {
			continue
		}
		if err := l.replaySegment(e.File, e.Base, from, fn); err != nil {
			return err
		}
	}
	if l.segRecs > 0 && l.segBase+l.segRecs > from {
		if err := l.replaySegment(l.segName, l.segBase, from, fn); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(name string, base, from int64, fn func(Record) error) error {
	f, err := l.fs.Open(filepath.Join(l.opts.Dir, name))
	if err != nil {
		return fmt.Errorf("wal: opening segment %s for replay: %w", name, err)
	}
	defer f.Close()
	fr := wire.NewReader(f)
	defer fr.Close()
	for off := base; ; off++ {
		frame, err := fr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("wal: segment %s record %d: %w", name, off, err)
		}
		if off < from {
			continue
		}
		if err := fn(Record{Offset: off, Frame: frame}); err != nil {
			return err
		}
	}
}

// TruncateBefore retires every sealed segment that lies entirely below
// offset — typically the offset of a freshly written snapshot. Each
// removal is first recorded as a chained "drop" manifest entry, so the
// hash chain stays verifiable over the full history even though the
// segment bytes are gone. The active segment is never truncated.
func (l *Log) TruncateBefore(offset int64) error {
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	kept := l.sealed[:0]
	var firstErr error
	for _, e := range l.sealed {
		if firstErr != nil || e.Base+e.Records > offset {
			kept = append(kept, e)
			continue
		}
		drop := manifestEntry{Op: "drop", File: e.File, Base: e.Base, Records: e.Records}
		if err := l.appendManifest(&drop); err != nil {
			firstErr = err
			kept = append(kept, e)
			continue
		}
		if err := l.fs.Remove(filepath.Join(l.opts.Dir, e.File)); err != nil {
			// The drop entry is durable; a leftover file is garbage the
			// next open ignores (dropped set), not corruption.
			firstErr = fmt.Errorf("wal: removing %s: %w", e.File, err)
		}
	}
	l.sealed = kept
	return firstErr
}

// NextOffset is the offset the next appended record will receive; a
// snapshot taken now should be stamped with it.
func (l *Log) NextOffset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextRec
}

// Stats reports the log's counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	appended, next, stagedPeak := l.appended, l.nextRec, l.stagedPeak
	l.mu.Unlock()
	return LogStats{
		Appended:   appended,
		Fsyncs:     l.fsyncs.Load(),
		NextOffset: next,
		Retries:    l.retries.Load(),
		StagedPeak: stagedPeak,
	}
}

// Err reports the sticky failure, if the log has fail-stopped.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close drains staged records, fsyncs, and — when seal is true — seals
// the active segment into the manifest so a clean shutdown leaves the
// entire log hash-chained. It returns the first flush failure; callers
// treat that as a failed shutdown (fwserve exits non-zero).
func (l *Log) Close(seal bool) error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.closed = true
	started := l.started
	l.drained.Broadcast()
	l.mu.Unlock()
	if started {
		close(l.quit)
		<-l.done
	}
	l.flush() // anything staged after the committer's final pass
	var firstErr error
	l.mu.Lock()
	firstErr = l.err
	l.mu.Unlock()
	if l.seg != nil {
		if firstErr == nil && l.dirty {
			if err := l.syncRetry(); err != nil {
				firstErr = fmt.Errorf("wal: final sync: %w", err)
			}
		}
		if firstErr == nil && seal && l.segRecs > 0 {
			if err := l.sealActive(); err != nil {
				firstErr = err
			}
		}
		if l.seg != nil {
			if err := l.seg.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			l.seg = nil
		}
	}
	if l.manifest != nil {
		if err := l.manifest.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		l.manifest = nil
	}
	return firstErr
}

// --- Snapshots ---

// snapMagic heads every snapshot file; the trailer is sha256 over the
// offset and payload, so a flipped byte anywhere is detected at load.
var snapMagic = []byte("FWWALSNAP1\n")

// WriteSnapshot durably writes an offset-stamped state snapshot beside
// the log (temp file, fsync, atomic rename, directory fsync). A
// snapshot at offset N asserts the state reflects records [0, N).
func WriteSnapshot(fsys FS, dir string, offset int64, data []byte) error {
	if fsys == nil {
		fsys = OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	tmp := filepath.Join(dir, snapFileName(offset)+snapTmpSuffix)
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot temp: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(offset))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(data)))
	h := sha256.New()
	h.Write(hdr[:8])
	h.Write(data)
	werr := writeAll(f, snapMagic, hdr[:], data, h.Sum(nil))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: writing snapshot: %w", werr)
	}
	final := filepath.Join(dir, snapFileName(offset))
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", dir, err)
	}
	return nil
}

func writeAll(f File, chunks ...[]byte) error {
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			return err
		}
	}
	return nil
}

// LatestSnapshot loads the newest snapshot in dir. A missing directory
// or no snapshots returns (0, nil, nil). A snapshot that fails its
// checksum is corruption and is reported, not skipped: snapshots are
// published by atomic rename, so a half-written one can never carry the
// snap-*.fws name legitimately.
func LatestSnapshot(fsys FS, dir string) (offset int64, data []byte, err error) {
	if fsys == nil {
		fsys = OS{}
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, nil, nil
	}
	best := int64(-1)
	bestName := ""
	for _, name := range names {
		if off, ok := parseBase(name, snapPrefix, snapSuffix); ok && off > best {
			best, bestName = off, name
		}
	}
	if best < 0 {
		return 0, nil, nil
	}
	payload, err := readSnapshot(fsys, filepath.Join(dir, bestName), best)
	if err != nil {
		return 0, nil, err
	}
	return best, payload, nil
}

func readSnapshot(fsys FS, path string, wantOffset int64) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: opening snapshot: %w", err)
	}
	raw, rerr := io.ReadAll(f)
	f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("wal: reading snapshot: %w", rerr)
	}
	if len(raw) < len(snapMagic)+16+sha256.Size || !bytes.Equal(raw[:len(snapMagic)], snapMagic) {
		return nil, fmt.Errorf("wal: snapshot %s: not a snapshot file", filepath.Base(path))
	}
	body := raw[len(snapMagic):]
	offset := int64(binary.LittleEndian.Uint64(body[0:]))
	size := binary.LittleEndian.Uint64(body[8:])
	body = body[16:]
	if uint64(len(body)) != size+sha256.Size {
		return nil, fmt.Errorf("wal: snapshot %s: truncated", filepath.Base(path))
	}
	payload, sum := body[:size], body[size:]
	h := sha256.New()
	var off8 [8]byte
	binary.LittleEndian.PutUint64(off8[:], uint64(offset))
	h.Write(off8[:])
	h.Write(payload)
	if !bytes.Equal(h.Sum(nil), sum) {
		return nil, fmt.Errorf("wal: snapshot %s: checksum mismatch", filepath.Base(path))
	}
	if offset != wantOffset {
		return nil, fmt.Errorf("wal: snapshot %s: stamped offset %d does not match its name", filepath.Base(path), offset)
	}
	return payload, nil
}

// PruneSnapshots removes all but the newest keep snapshots.
func PruneSnapshots(fsys FS, dir string, keep int) error {
	if fsys == nil {
		fsys = OS{}
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var offs []int64
	var firstErr error
	for _, name := range names {
		if off, ok := parseBase(name, snapPrefix, snapSuffix); ok {
			offs = append(offs, off)
		} else if strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapTmpSuffix) {
			// A crash mid-write leaves the temp file behind; it never
			// carries the published suffix, so removing it is always safe.
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if len(offs) <= keep {
		return firstErr
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] > offs[j] })
	for _, off := range offs[keep:] {
		if err := fsys.Remove(filepath.Join(dir, snapFileName(off))); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
