// Degraded-mode tests: transient wal.FS faults ride through the bounded
// retry budget, permanent faults still fail-stop, and torn writes never
// corrupt what was acked. External test package: the chaos harness
// imports wal for the FS seam, so these tests cannot live in package
// wal without a cycle.
package wal_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"factorwindows/internal/chaos"
	"factorwindows/internal/wal"
)

func openChaosLog(t *testing.T, dir string, inj *chaos.Injector, attempts int) *wal.Log {
	t.Helper()
	log, err := wal.Open(wal.Options{
		Dir:           dir,
		Fsync:         wal.FsyncEvery,
		FS:            chaos.WrapFS(nil, inj),
		RetryAttempts: attempts,
		RetryBackoff:  50 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return log
}

func TestTransientWriteFaultRidesThrough(t *testing.T) {
	inj := chaos.NewInjector(1, chaos.Spec{})
	log := openChaosLog(t, t.TempDir(), inj, 3)
	defer log.Close(false)

	inj.ForceFail("write", 2)
	c, err := log.AppendControl([]byte("payload"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	durable, err := c.Wait()
	if err != nil {
		t.Fatalf("commit failed despite retry budget: %v", err)
	}
	if !durable {
		t.Fatal("FsyncEvery commit not durable")
	}
	if got := log.Stats().Retries; got != 2 {
		t.Fatalf("Stats().Retries = %d, want 2", got)
	}
	if err := log.Err(); err != nil {
		t.Fatalf("log fail-stopped on a transient fault: %v", err)
	}
}

func TestTransientSyncFaultRidesThrough(t *testing.T) {
	inj := chaos.NewInjector(2, chaos.Spec{})
	log := openChaosLog(t, t.TempDir(), inj, 2)
	defer log.Close(false)

	inj.ForceFail("sync", 1)
	c, err := log.AppendControl([]byte("payload"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := c.Wait(); err != nil {
		t.Fatalf("commit failed despite retry budget: %v", err)
	}
	if got := log.Stats().Retries; got != 1 {
		t.Fatalf("Stats().Retries = %d, want 1", got)
	}
}

func TestRetryBudgetExhaustionFailStops(t *testing.T) {
	inj := chaos.NewInjector(3, chaos.Spec{})
	log := openChaosLog(t, t.TempDir(), inj, 2)
	defer log.Close(false)

	inj.ForceFail("write", 10)
	c, err := log.AppendControl([]byte("payload"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := c.Wait(); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("commit err = %v, want the injected fault", err)
	}
	if err := log.Err(); err == nil {
		t.Fatal("log did not fail-stop after retry exhaustion")
	}
	// The fail-stop gate is sticky: later appends are rejected outright.
	if _, err := log.AppendControl([]byte("after")); err == nil {
		t.Fatal("append accepted after fail-stop")
	}
}

func TestZeroAttemptsPreservesFailFast(t *testing.T) {
	inj := chaos.NewInjector(4, chaos.Spec{})
	log := openChaosLog(t, t.TempDir(), inj, 0)
	defer log.Close(false)

	inj.ForceFail("write", 1)
	c, err := log.AppendControl([]byte("payload"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := c.Wait(); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("commit err = %v, want immediate injected failure", err)
	}
	if got := log.Stats().Retries; got != 0 {
		t.Fatalf("Stats().Retries = %d with a zero budget, want 0", got)
	}
}

// TestTornWritesNeverCorruptAckedRecords is the crash-consistency
// property under random torn writes: run a log under probabilistic
// write/sync faults (partial writes included) with a retry budget,
// then reopen the directory with a clean filesystem. Recovery must
// verify, and every record that was acked durable must replay, in
// offset order, with its exact payload. Seeds are committed; the same
// seed always replays the same fault schedule.
func TestTornWritesNeverCorruptAckedRecords(t *testing.T) {
	for _, seed := range []int64{5, 21, 1234, 987654321} {
		inj := chaos.NewInjector(seed, chaos.Spec{
			FailProb:    0.25,
			PartialProb: 0.7,
			Ops:         map[string]bool{"write": true, "sync": true},
		})
		dir := t.TempDir()
		log, err := wal.Open(wal.Options{
			Dir:           dir,
			Fsync:         wal.FsyncEvery,
			SegmentBytes:  256, // force rotations mid-chaos
			FS:            chaos.WrapFS(nil, inj),
			RetryAttempts: 12,
			RetryBackoff:  20 * time.Microsecond,
		})
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}

		var acked [][]byte
		for i := 0; i < 60; i++ {
			payload := bytes.Repeat([]byte{byte(i)}, 8+i)
			c, err := log.AppendControl(payload)
			if err != nil {
				break // fail-stopped: everything acked so far must survive
			}
			durable, err := c.Wait()
			if err != nil {
				break
			}
			if !durable {
				t.Fatalf("seed %d: FsyncEvery ack not durable", seed)
			}
			acked = append(acked, payload)
		}
		log.Close(false) // may fail under injection; recovery is the check

		clean, err := wal.Open(wal.Options{Dir: dir})
		if err != nil {
			t.Fatalf("seed %d: recovery open failed: %v", seed, err)
		}
		var got [][]byte
		err = clean.Replay(0, func(r wal.Record) error {
			if int64(len(got)) != r.Offset {
				t.Fatalf("seed %d: replay offset %d at position %d", seed, r.Offset, len(got))
			}
			got = append(got, append([]byte(nil), r.Frame.Control()...))
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		clean.Close(false)
		if len(got) < len(acked) {
			t.Fatalf("seed %d: %d acked records, only %d replayed", seed, len(acked), len(got))
		}
		for i, want := range acked {
			if !bytes.Equal(got[i], want) {
				t.Fatalf("seed %d: record %d payload mismatch", seed, i)
			}
		}
		if inj.Injected("") == 0 {
			t.Fatalf("seed %d: schedule injected no faults; property vacuous", seed)
		}
	}
}

func TestStagedPeakReported(t *testing.T) {
	log, err := wal.Open(wal.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer log.Close(false)
	c, err := log.AppendControl(bytes.Repeat([]byte{1}, 100))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := c.Wait(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := log.Stats().StagedPeak; got < 100 {
		t.Fatalf("Stats().StagedPeak = %d, want >= 100", got)
	}
}
