package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"factorwindows/internal/stream"
	"factorwindows/internal/wire"
)

func mkEvents(base, n int) []stream.Event {
	evs := make([]stream.Event, n)
	for i := range evs {
		evs[i] = stream.Event{
			Time:  int64(base + i),
			Key:   uint64(base*31 + i),
			Value: float64(base) + float64(i)/8,
		}
	}
	return evs
}

func openLog(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendWait(t *testing.T, l *Log, evs []stream.Event) *Commit {
	t.Helper()
	c, err := l.Append(evs)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := c.Wait(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return c
}

// replayAll collects every record at or after from as decoded batches
// (events) or control payload copies.
func replayAll(t *testing.T, l *Log, from int64) (offsets []int64, batches [][]stream.Event, controls []string) {
	t.Helper()
	err := l.Replay(from, func(rec Record) error {
		offsets = append(offsets, rec.Offset)
		switch rec.Frame.Kind {
		case wire.KindEvents:
			batches = append(batches, rec.Frame.AppendEvents(nil))
			controls = append(controls, "")
		case wire.KindControl:
			batches = append(batches, nil)
			controls = append(controls, string(rec.Frame.Control()))
		default:
			return fmt.Errorf("unexpected kind %d", rec.Frame.Kind)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return offsets, batches, controls
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, Options{Dir: dir})

	var want [][]stream.Event
	for i := 0; i < 10; i++ {
		evs := mkEvents(i*100, 5+i)
		appendWait(t, l, evs)
		want = append(want, evs)
	}
	c, err := l.AppendControl([]byte(`{"op":"register","id":"q1"}`))
	if err != nil {
		t.Fatalf("AppendControl: %v", err)
	}
	if durable, err := c.Wait(); err != nil || !durable {
		t.Fatalf("control commit: durable=%t err=%v", durable, err)
	}
	if got := c.Offset(); got != 10 {
		t.Fatalf("control offset = %d, want 10", got)
	}
	if err := l.Close(false); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l = openLog(t, Options{Dir: dir})
	defer l.Close(false)
	if got := l.NextOffset(); got != 11 {
		t.Fatalf("NextOffset after reopen = %d, want 11", got)
	}
	offsets, batches, controls := replayAll(t, l, 0)
	if len(offsets) != 11 {
		t.Fatalf("replayed %d records, want 11", len(offsets))
	}
	for i, off := range offsets {
		if off != int64(i) {
			t.Fatalf("offset[%d] = %d", i, off)
		}
	}
	for i, evs := range want {
		if !reflect.DeepEqual(batches[i], evs) {
			t.Fatalf("batch %d mismatch", i)
		}
	}
	if controls[10] != `{"op":"register","id":"q1"}` {
		t.Fatalf("control payload = %q", controls[10])
	}

	// Replaying from a mid-log offset skips the covered prefix.
	offsets, _, _ = replayAll(t, l, 7)
	if len(offsets) != 4 || offsets[0] != 7 {
		t.Fatalf("replay from 7: offsets %v", offsets)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, Options{Dir: dir, Fsync: FsyncEvery})
	defer l.Close(false)

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c, err := l.Append(mkEvents(w*1000+i, 3))
				if err != nil {
					errs <- err
					return
				}
				durable, err := c.Wait()
				if err != nil {
					errs <- err
					return
				}
				if !durable {
					errs <- fmt.Errorf("FsyncEvery acked durable=false")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appended != writers*perWriter {
		t.Fatalf("Appended = %d, want %d", st.Appended, writers*perWriter)
	}
	if st.Fsyncs < 1 || st.Fsyncs > st.Appended {
		t.Fatalf("Fsyncs = %d out of range (0, %d]", st.Fsyncs, st.Appended)
	}
	offsets, _, _ := replayAll(t, l, 0)
	if len(offsets) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(offsets), writers*perWriter)
	}
}

func TestRotationSealAndVerify(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every batch rotates the segment.
	l := openLog(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 0; i < 6; i++ {
		appendWait(t, l, mkEvents(i*10, 4))
	}
	if err := l.Close(false); err != nil {
		t.Fatalf("Close: %v", err)
	}

	names, err := OS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if _, ok := parseBase(n, segPrefix, segSuffix); ok {
			segs = append(segs, n)
		}
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}

	// Clean reopen verifies the whole chain and replays everything.
	l = openLog(t, Options{Dir: dir})
	offsets, _, _ := replayAll(t, l, 0)
	if len(offsets) != 6 {
		t.Fatalf("replayed %d, want 6", len(offsets))
	}
	l.Close(false)

	// Flipping one byte of a sealed segment must be detected.
	corrupt := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	orig := data[len(data)/2]
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("tampered segment: err = %v, want ErrCorruptSegment", err)
	}
	data[len(data)/2] = orig
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Deleting a sealed segment must be detected.
	if err := os.Rename(corrupt, corrupt+".hidden"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("missing segment: err = %v, want ErrCorruptSegment", err)
	}
	if err := os.Rename(corrupt+".hidden", corrupt); err != nil {
		t.Fatal(err)
	}

	// A segment file the manifest never heard of must be detected.
	stray := filepath.Join(dir, segFileName(1<<40))
	if err := os.WriteFile(stray, []byte("xx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("stray segment: err = %v, want ErrCorruptManifest", err)
	}
	os.Remove(stray)

	// Editing a mid-file manifest line breaks the hash chain.
	mpath := filepath.Join(dir, manifestName)
	mdata, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes0xReplaceFirst(mdata, `"op":"seal"`, `"op":"SEAL"`)
	if err := os.WriteFile(mpath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("tampered manifest: err = %v, want ErrCorruptManifest", err)
	}
}

// bytes0xReplaceFirst replaces the first occurrence of old with new
// (same length) in a copy of b.
func bytes0xReplaceFirst(b []byte, old, new string) []byte {
	out := append([]byte(nil), b...)
	for i := 0; i+len(old) <= len(out); i++ {
		if string(out[i:i+len(old)]) == old {
			copy(out[i:], new)
			return out
		}
	}
	return out
}

func TestTornTails(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		l := openLog(t, Options{Dir: dir})
		for i := 0; i < 3; i++ {
			appendWait(t, l, mkEvents(i*10, 4))
		}
		if err := l.Close(false); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	activeSeg := func(t *testing.T, dir string) string {
		names, err := OS{}.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if _, ok := parseBase(n, segPrefix, segSuffix); ok {
				return filepath.Join(dir, n)
			}
		}
		t.Fatal("no segment file")
		return ""
	}
	appendBytes := func(t *testing.T, path string, b []byte) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	t.Run("partial-record", func(t *testing.T) {
		dir := build(t)
		// A prefix of a valid frame: exactly what a crash mid-append leaves.
		frame := wire.AppendEventFrame(nil, mkEvents(99, 4))
		appendBytes(t, activeSeg(t, dir), frame[:len(frame)-7])
		l := openLog(t, Options{Dir: dir})
		defer l.Close(false)
		if got := l.NextOffset(); got != 3 {
			t.Fatalf("NextOffset = %d, want 3 (torn tail truncated)", got)
		}
		offsets, _, _ := replayAll(t, l, 0)
		if len(offsets) != 3 {
			t.Fatalf("replayed %d, want 3", len(offsets))
		}
	})

	t.Run("zero-fill", func(t *testing.T) {
		dir := build(t)
		appendBytes(t, activeSeg(t, dir), make([]byte, 100))
		l := openLog(t, Options{Dir: dir})
		defer l.Close(false)
		if got := l.NextOffset(); got != 3 {
			t.Fatalf("NextOffset = %d, want 3 (zero tail truncated)", got)
		}
	})

	t.Run("garbage-is-corruption", func(t *testing.T) {
		dir := build(t)
		// A plausible length prefix followed by non-frame bytes is not a
		// torn append — refuse to open rather than guess.
		garbage := []byte{24, 0, 0, 0, 'X', 'X', 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
		appendBytes(t, activeSeg(t, dir), garbage)
		if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("garbage tail: err = %v, want ErrCorruptSegment", err)
		}
	})

	t.Run("torn-manifest-line", func(t *testing.T) {
		dir := t.TempDir()
		l := openLog(t, Options{Dir: dir, SegmentBytes: 64})
		for i := 0; i < 4; i++ {
			appendWait(t, l, mkEvents(i*10, 4))
		}
		if err := l.Close(false); err != nil {
			t.Fatal(err)
		}
		// Chop the final manifest line mid-JSON: a crash during a seal.
		mpath := filepath.Join(dir, manifestName)
		data, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mpath, data[:len(data)-10], 0o644); err != nil {
			t.Fatal(err)
		}
		// The chopped entry's segment is now unaccounted for; recovery
		// truncates the torn line but must then flag the stray file.
		if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorruptManifest) {
			t.Fatalf("after torn manifest: err = %v, want ErrCorruptManifest", err)
		}
	})
}

func TestMinOffsetAlignment(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, Options{Dir: dir})
	for i := 0; i < 5; i++ {
		appendWait(t, l, mkEvents(i, 2))
	}
	if err := l.Close(false); err != nil {
		t.Fatal(err)
	}

	// A snapshot at offset 20 outruns the surviving log (possible under
	// -fsync off): numbering must resume at 20, never reusing covered
	// offsets.
	l = openLog(t, Options{Dir: dir, MinOffset: 20})
	if got := l.NextOffset(); got != 20 {
		t.Fatalf("NextOffset = %d, want 20", got)
	}
	offsets, _, _ := replayAll(t, l, 20)
	if len(offsets) != 0 {
		t.Fatalf("replay from 20 returned %v", offsets)
	}
	c := appendWait(t, l, mkEvents(100, 2))
	if c.Offset() != 20 {
		t.Fatalf("first append got offset %d, want 20", c.Offset())
	}
	if err := l.Close(false); err != nil {
		t.Fatal(err)
	}

	// The realigned log must survive a clean reopen (old records sealed
	// behind the gap, new ones replayable).
	l = openLog(t, Options{Dir: dir})
	defer l.Close(false)
	offsets, _, _ = replayAll(t, l, 20)
	if len(offsets) != 1 || offsets[0] != 20 {
		t.Fatalf("replay after realign: %v", offsets)
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 0; i < 6; i++ {
		appendWait(t, l, mkEvents(i*10, 4))
	}
	if err := l.TruncateBefore(4); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	offsets, _, _ := replayAll(t, l, 4)
	if len(offsets) != 2 || offsets[0] != 4 {
		t.Fatalf("replay after truncate: %v", offsets)
	}
	if err := l.Close(true); err != nil {
		t.Fatal(err)
	}

	// The drop entries keep the chain verifiable with the bytes gone.
	l = openLog(t, Options{Dir: dir})
	defer l.Close(false)
	offsets, _, _ = replayAll(t, l, 4)
	if len(offsets) != 2 || offsets[0] != 4 || offsets[1] != 5 {
		t.Fatalf("replay after reopen: %v", offsets)
	}
}

func TestSnapshots(t *testing.T) {
	dir := t.TempDir()
	// No directory / no snapshots: clean zero state.
	if off, data, err := LatestSnapshot(nil, filepath.Join(dir, "missing")); off != 0 || data != nil || err != nil {
		t.Fatalf("empty LatestSnapshot = %d %v %v", off, data, err)
	}

	for _, off := range []int64{5, 17, 9} {
		payload := []byte(fmt.Sprintf("state-at-%d", off))
		if err := WriteSnapshot(nil, dir, off, payload); err != nil {
			t.Fatalf("WriteSnapshot(%d): %v", off, err)
		}
	}
	off, data, err := LatestSnapshot(nil, dir)
	if err != nil || off != 17 || string(data) != "state-at-17" {
		t.Fatalf("LatestSnapshot = %d %q %v", off, data, err)
	}

	if err := PruneSnapshots(nil, dir, 2); err != nil {
		t.Fatalf("PruneSnapshots: %v", err)
	}
	names, _ := OS{}.ReadDir(dir)
	if len(names) != 2 {
		t.Fatalf("after prune: %v", names)
	}

	// A flipped payload byte fails the checksum — reported, not skipped.
	path := filepath.Join(dir, snapFileName(17))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-40] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LatestSnapshot(nil, dir); err == nil {
		t.Fatal("corrupted snapshot loaded without error")
	}
}

func TestSnapshotRenameFailure(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(nil, dir, 3, []byte("good")); err != nil {
		t.Fatal(err)
	}
	ffs := newFaultFS(OS{})
	ffs.failRename = true
	if err := WriteSnapshot(ffs, dir, 9, []byte("never-lands")); err == nil {
		t.Fatal("WriteSnapshot succeeded through a failed rename")
	}
	// The failed write must not disturb the previous snapshot, and its
	// temp file must not be mistaken for a snapshot.
	off, data, err := LatestSnapshot(nil, dir)
	if err != nil || off != 3 || string(data) != "good" {
		t.Fatalf("LatestSnapshot after failed write = %d %q %v", off, data, err)
	}
}

func TestAppendFailureFailStops(t *testing.T) {
	dir := t.TempDir()
	ffs := newFaultFS(OS{})
	l := openLog(t, Options{Dir: dir, FS: ffs})
	appendWait(t, l, mkEvents(0, 2))

	ffs.mu.Lock()
	ffs.failWrites = true
	ffs.mu.Unlock()
	c, err := l.Append(mkEvents(10, 2))
	if err != nil {
		t.Fatalf("Append (staging) should not fail: %v", err)
	}
	if _, err := c.Wait(); !errors.Is(err, errInjected) {
		t.Fatalf("commit after write fault: err = %v", err)
	}
	// The log is fail-stopped: later appends are rejected outright.
	if _, err := l.Append(mkEvents(20, 2)); err == nil {
		t.Fatal("Append accepted on a fail-stopped log")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil on a fail-stopped log")
	}
	l.Close(false)

	// The record whose commit failed must not replay after recovery.
	l2 := openLog(t, Options{Dir: dir})
	defer l2.Close(false)
	offsets, _, _ := replayAll(t, l2, 0)
	if len(offsets) != 1 {
		t.Fatalf("replayed %d records, want only the acked one", len(offsets))
	}
}

func TestSyncFailureFailStops(t *testing.T) {
	dir := t.TempDir()
	ffs := newFaultFS(OS{})
	l := openLog(t, Options{Dir: dir, Fsync: FsyncEvery, FS: ffs})
	appendWait(t, l, mkEvents(0, 2))

	ffs.mu.Lock()
	ffs.failSync = true
	ffs.mu.Unlock()
	c, err := l.Append(mkEvents(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if durable, err := c.Wait(); err == nil || durable {
		t.Fatalf("commit after sync fault: durable=%t err=%v", durable, err)
	}
	if _, err := l.Append(mkEvents(20, 2)); err == nil {
		t.Fatal("Append accepted after failed fsync")
	}
	l.Close(false)
}

// TestCrashPointProperty is the core recovery property: crash the
// filesystem at an arbitrary byte offset mid-append, reopen, and the
// surviving log must be exactly a prefix of the appended batches that
// includes every batch acked durable — and it must replay cleanly, with
// the torn tail cut, never an error.
func TestCrashPointProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			ffs := newFaultFS(OS{})
			ffs.setBudget(int64(rng.Intn(4000)))
			l := openLog(t, Options{Dir: dir, Fsync: FsyncEvery, SegmentBytes: 512, FS: ffs})

			var want [][]stream.Event
			durableThrough := -1
			for i := 0; i < 40; i++ {
				evs := mkEvents(i*50, 1+rng.Intn(8))
				c, err := l.Append(evs)
				if err != nil {
					break // fail-stopped by an earlier fault
				}
				want = append(want, evs)
				durable, err := c.Wait()
				if err != nil {
					break
				}
				if durable {
					durableThrough = i
				}
			}
			l.Close(false)

			// Recover with a healthy filesystem.
			l2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("recovery Open: %v", err)
			}
			defer l2.Close(false)
			offsets, batches, _ := replayAll(t, l2, 0)
			if len(offsets) < durableThrough+1 {
				t.Fatalf("replayed %d batches, but %d were acked durable", len(offsets), durableThrough+1)
			}
			if len(offsets) > len(want) {
				t.Fatalf("replayed %d batches, only %d were ever appended", len(offsets), len(want))
			}
			for i := range offsets {
				if offsets[i] != int64(i) {
					t.Fatalf("offset[%d] = %d", i, offsets[i])
				}
				if !reflect.DeepEqual(batches[i], want[i]) {
					t.Fatalf("batch %d differs from what was appended", i)
				}
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	cases := map[string]FsyncPolicy{"every": FsyncEvery, "": FsyncEvery, "interval": FsyncInterval, "off": FsyncOff}
	for in, want := range cases {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Fatalf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

func TestManifestChainIsDeterministic(t *testing.T) {
	e := manifestEntry{Seq: 1, Op: "seal", File: "seg-0000000000000000.wal", Base: 0, Records: 3, Bytes: 100, Hash: "ab"}
	c1 := chainHash(nil, e)
	c2 := chainHash(nil, e)
	if c1 != c2 {
		t.Fatal("chainHash not deterministic")
	}
	e2 := e
	e2.Records = 4
	if chainHash(nil, e2) == c1 {
		t.Fatal("chainHash ignores entry contents")
	}
	// Chain must depend on the previous link too.
	prev, _ := json.Marshal(e)
	if chainHash(prev, e) == c1 {
		t.Fatal("chainHash ignores the previous chain value")
	}
}
