package wal

import (
	"errors"
	"sync"
)

// errInjected marks every fault the harness injects, so tests can tell
// an injected failure from a real one.
var errInjected = errors.New("injected fault")

// faultFS wraps another FS and injects the failure modes a real disk
// produces at the worst moments: failed or short (torn) writes, failed
// fsyncs, and failed renames. A short write persists a prefix of the
// buffer and then reports an error — exactly the torn-tail shape a
// crash mid-append leaves behind — and once the write budget is spent
// every later write fails too, modeling "the process died here".
type faultFS struct {
	inner FS

	mu sync.Mutex
	// writeBudget is the number of bytes Writes may persist before the
	// injected crash point; negative means unlimited. The write that
	// crosses zero persists only its allowed prefix.
	writeBudget int64
	failSync    bool
	failRename  bool
	failWrites  bool // every write fails without persisting anything

	writeFails int
	syncFails  int
}

func newFaultFS(inner FS) *faultFS {
	return &faultFS{inner: inner, writeBudget: -1}
}

func (f *faultFS) setBudget(n int64) {
	f.mu.Lock()
	f.writeBudget = n
	f.mu.Unlock()
}

// admit reserves up to n bytes of write budget, reporting how many may
// be persisted and whether the write must fail.
func (f *faultFS) admit(n int) (allowed int, fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failWrites {
		f.writeFails++
		return 0, true
	}
	if f.writeBudget < 0 {
		return n, false
	}
	if int64(n) <= f.writeBudget {
		f.writeBudget -= int64(n)
		return n, false
	}
	allowed = int(f.writeBudget)
	f.writeBudget = 0
	f.writeFails++
	return allowed, true
}

type faultFile struct {
	File
	fs *faultFS
}

func (ff faultFile) Write(p []byte) (int, error) {
	allowed, fail := ff.fs.admit(len(p))
	if allowed > 0 {
		if n, err := ff.File.Write(p[:allowed]); err != nil {
			return n, err
		}
	}
	if fail {
		return allowed, errInjected
	}
	return len(p), nil
}

func (ff faultFile) Sync() error {
	ff.fs.mu.Lock()
	fail := ff.fs.failSync || ff.fs.writeBudget == 0
	if fail {
		ff.fs.syncFails++
	}
	ff.fs.mu.Unlock()
	if fail {
		return errInjected
	}
	return ff.File.Sync()
}

func (f *faultFS) MkdirAll(path string) error { return f.inner.MkdirAll(path) }

func (f *faultFS) Create(path string) (File, error) {
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return faultFile{File: file, fs: f}, nil
}

func (f *faultFS) OpenAppend(path string) (File, error) {
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return faultFile{File: file, fs: f}, nil
}

func (f *faultFS) Open(path string) (File, error) { return f.inner.Open(path) }

func (f *faultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *faultFS) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	fail := f.failRename
	f.mu.Unlock()
	if fail {
		return errInjected
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *faultFS) Remove(path string) error { return f.inner.Remove(path) }

func (f *faultFS) Truncate(path string, size int64) error { return f.inner.Truncate(path, size) }

func (f *faultFS) Size(path string) (int64, error) { return f.inner.Size(path) }

func (f *faultFS) SyncDir(dir string) error {
	f.mu.Lock()
	fail := f.failSync
	f.mu.Unlock()
	if fail {
		return errInjected
	}
	return f.inner.SyncDir(dir)
}
