package wal

import (
	"fmt"
	"os"
	"testing"
	"time"

	"factorwindows/internal/stream"
)

// benchDir prefers a tmpfs-backed log directory so the guarded numbers
// pin the WAL software path rather than the block device: virtualized
// CI disks throttle mid-run, which would make the committed baseline a
// disk lottery instead of a regression guard. Device throughput is an
// operations measurement (dd, fio), not a property this code can hold
// steady. The every policy still pays a real fsync on tmpfs-less hosts;
// on tmpfs it degenerates to the syscall floor, which is exactly the
// software cost the guard is after.
func benchDir(b *testing.B) string {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		dir, err := os.MkdirTemp("/dev/shm", "fw-wal-bench-*")
		if err == nil {
			b.Cleanup(func() { os.RemoveAll(dir) })
			return dir
		}
	}
	return b.TempDir()
}

// benchEvents builds one append batch: in-order ticks over a small key
// set, the same shape the server's ingest path stages per WAL record.
func benchEvents(n int) []stream.Event {
	events := make([]stream.Event, n)
	for i := range events {
		events[i] = stream.Event{
			Time: int64(i) / 4, Key: uint64(i % 8), Value: float64(i%997) * 0.25,
		}
	}
	return events
}

// BenchmarkWALAppend measures one staged append plus commit wait per op
// under each fsync policy: off (buffered write only), interval (write
// now, fsync on the ticker — the ingest hot path's configuration), and
// every (one group commit per op; sequential appends cannot amortize
// the fsync, so this is the per-batch fsync latency floor). BENCH_wal
// .json guards off and interval; every is reported informationally —
// fsync latency is a device property, not a code property.
func BenchmarkWALAppend(b *testing.B) {
	const batch = 512
	events := benchEvents(batch)
	for _, pol := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncEvery} {
		b.Run(pol.String(), func(b *testing.B) {
			l, err := Open(Options{
				Dir:           benchDir(b),
				Fsync:         pol,
				FsyncInterval: 50 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close(false)
			b.SetBytes(int64(batch * 24))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := l.Append(events)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
		})
	}
}

// BenchmarkWALGroupCommit drives FsyncEvery from parallel writers, the
// scenario group commit exists for: concurrent appends staged during
// one fsync ride the next, so the fsync count stays far below the
// append count and per-append latency amortizes. Reported fsyncs/op is
// the amortization factor.
func BenchmarkWALGroupCommit(b *testing.B) {
	const batch = 64
	events := benchEvents(batch)
	l, err := Open(Options{Dir: benchDir(b), Fsync: FsyncEvery})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close(false)
	b.SetBytes(int64(batch * 24))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c, err := l.Append(events)
			if err != nil {
				b.Fatal(err)
			}
			if durable, err := c.Wait(); err != nil || !durable {
				b.Fatal(fmt.Errorf("durable=%v err=%v", durable, err))
			}
		}
	})
	st := l.Stats()
	b.ReportMetric(float64(st.Fsyncs)/float64(st.Appended), "fsyncs/append")
}
