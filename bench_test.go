// Benchmarks regenerating the paper's evaluation. One Benchmark per
// table/figure runs the corresponding harness experiment and prints the
// same rows the paper reports (on the first iteration only). Dataset
// sizes are scaled down so the full suite completes in minutes; use
// cmd/fwbench -events to reproduce at Synthetic-10M scale.
//
// Micro-benchmarks at the bottom measure the engine, the optimizer and
// the slicing baseline in isolation, including the ablations called out
// in DESIGN.md.
package factorwindows

import (
	"io"
	"math/big"
	"math/rand"
	"os"
	"testing"

	"factorwindows/internal/agg"
	"factorwindows/internal/core"
	"factorwindows/internal/distinct"
	"factorwindows/internal/engine"
	"factorwindows/internal/harness"
	"factorwindows/internal/multiquery"
	"factorwindows/internal/parallel"
	"factorwindows/internal/plan"
	"factorwindows/internal/quantile"
	"factorwindows/internal/reorder"
	"factorwindows/internal/session"
	"factorwindows/internal/slicing"
	"factorwindows/internal/sliding"
	"factorwindows/internal/stream"
	"factorwindows/internal/window"
	"factorwindows/internal/workload"
)

// benchExperiment runs one named harness experiment per iteration,
// printing its report once.
func benchExperiment(b *testing.B, name string, events int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var out io.Writer = io.Discard
		if i == 0 {
			out = os.Stdout
		}
		cfg := harness.Config{Events: events, Fn: agg.Min, Out: out}
		if err := harness.RunExperiment(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 11: throughput on Synthetic-10M window sets, |W| = 5.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11", 100_000) }

// Table I: throughput boosts on Synthetic-10M, |W| ∈ {5, 10}.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", 60_000) }

// Table II: throughput boosts on Real-32M (DEBS-like), |W| ∈ {5, 10}.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", 60_000) }

// Table III: scalability, |W| ∈ {15, 20}.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", 40_000) }

// Figure 12: optimization overhead vs window-set size.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12", 0) }

// Figure 13: Flink vs Scotty vs factor windows, |W| = 10.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13", 80_000) }

// Figure 14: throughput detail, Synthetic-10M, |W| = 10.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14", 80_000) }

// Figure 15: throughput detail, Synthetic-1M, |W| = 5.
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15", 100_000) }

// Figure 16: throughput detail, Synthetic-1M, |W| = 10.
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16", 100_000) }

// Table IV: throughput boosts, Synthetic-1M.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4", 100_000) }

// Figure 17: throughput detail, Real-32M (DEBS-like), |W| = 5.
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17", 80_000) }

// Figure 18: throughput detail, Real-32M (DEBS-like), |W| = 10.
func BenchmarkFig18(b *testing.B) { benchExperiment(b, "fig18", 80_000) }

// Figure 19: cost-model validation (γC vs γT, Pearson r).
func BenchmarkFig19(b *testing.B) { benchExperiment(b, "fig19", 60_000) }

// Figure 20: scalability detail, |W| = 15.
func BenchmarkFig20(b *testing.B) { benchExperiment(b, "fig20", 40_000) }

// Figure 21: scalability detail, |W| = 20.
func BenchmarkFig21(b *testing.B) { benchExperiment(b, "fig21", 40_000) }

// Figure 22: Flink vs Scotty vs factor windows, |W| = 5.
func BenchmarkFig22(b *testing.B) { benchExperiment(b, "fig22", 80_000) }

// --- Micro-benchmarks -------------------------------------------------

// paperSet is the introduction's Example 1 window set.
func paperSet(b *testing.B) *window.Set {
	b.Helper()
	set, err := window.NewSet(window.Tumbling(20), window.Tumbling(30), window.Tumbling(40))
	if err != nil {
		b.Fatal(err)
	}
	return set
}

func benchEvents(n int) []stream.Event {
	return workload.Synthetic(workload.StreamConfig{Events: n, Keys: 4, EventsPerTick: 4, Seed: 1})
}

// benchEnginePlan measures raw engine throughput for one plan variant.
func benchEnginePlan(b *testing.B, factors bool, kind plan.Kind) {
	set := paperSet(b)
	events := benchEvents(200_000)
	var p *plan.Plan
	var err error
	if kind == plan.Original {
		p, err = plan.NewOriginal(set, agg.Min)
	} else {
		var res *core.Result
		res, err = core.Optimize(set, agg.Min, core.Options{Factors: factors})
		if err != nil {
			b.Fatal(err)
		}
		p, err = plan.FromGraph(res.Graph, agg.Min, kind)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(p, events, &stream.CountingSink{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// Engine throughput on the Example 1 query, per plan variant.
func BenchmarkEngineOriginal(b *testing.B)  { benchEnginePlan(b, false, plan.Original) }
func BenchmarkEngineRewritten(b *testing.B) { benchEnginePlan(b, false, plan.Rewritten) }
func BenchmarkEngineFactored(b *testing.B)  { benchEnginePlan(b, true, plan.Factored) }

// BenchmarkSlicingBaseline measures the Scotty-style slicing executor on
// the same query.
func BenchmarkSlicingBaseline(b *testing.B) {
	set := paperSet(b)
	events := benchEvents(200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slicing.Run(set, agg.Min, events, &stream.CountingSink{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// benchOptimize measures optimizer latency for one suite configuration.
func benchOptimize(b *testing.B, n int, tumbling bool, factors bool) {
	suite := harness.Suite{Gen: "R", N: n, Tumbling: tumbling, Runs: 10, Seed: 42}
	sets, err := suite.Sets()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := sets[i%len(sets)]
		if _, err := core.Optimize(set, agg.Min, core.Options{
			Factors: factors, Semantics: suite.Semantics(),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Optimizer latency: |W| ∈ {5, 20}, with and without factor search.
func BenchmarkOptimize5NoFactors(b *testing.B)   { benchOptimize(b, 5, true, false) }
func BenchmarkOptimize5Factors(b *testing.B)     { benchOptimize(b, 5, true, true) }
func BenchmarkOptimize20Factors(b *testing.B)    { benchOptimize(b, 20, true, true) }
func BenchmarkOptimize20HopFactors(b *testing.B) { benchOptimize(b, 20, false, true) }

// BenchmarkAblationSemantics compares Algorithm 5's reduced "partitioned
// by" factor search against the general Algorithm 2 search on the same
// tumbling window sets (MIN supports both), the trade-off Section IV-D
// discusses: Algorithm 5 is faster but may miss candidates.
func BenchmarkAblationSemantics(b *testing.B) {
	suite := harness.Suite{Gen: "R", N: 10, Tumbling: true, Runs: 10, Seed: 42}
	sets, err := suite.Sets()
	if err != nil {
		b.Fatal(err)
	}
	for _, sem := range []agg.Semantics{agg.PartitionedBy, agg.CoveredBy} {
		sem := sem
		b.Run(sem.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set := sets[i%len(sets)]
				if _, err := core.Optimize(set, agg.Min, core.Options{
					Factors: true, Semantics: sem,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSteiner compares Algorithm 3's per-vertex factor
// search against the Steiner-pool mode (insert the whole candidate
// universe, prune what does not pay): optimizer latency on one axis, and
// the achieved plan cost as a reported metric (lower is better). This is
// the gap characterization footnote 3 of the paper leaves as future work.
func BenchmarkAblationSteiner(b *testing.B) {
	suite := harness.Suite{Gen: "R", N: 10, Tumbling: true, Runs: 10, Seed: 42}
	sets, err := suite.Sets()
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		run  func(set *window.Set) (*core.Result, error)
	}{
		{"algorithm3", func(set *window.Set) (*core.Result, error) {
			return core.Optimize(set, agg.Min, core.Options{Factors: true})
		}},
		{"steiner", func(set *window.Set) (*core.Result, error) {
			return core.OptimizeSteiner(set, agg.Min, core.Options{}, 0)
		}},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				set := sets[i%len(sets)]
				res, err := m.run(set)
				if err != nil {
					b.Fatal(err)
				}
				c, _ := new(big.Float).SetInt(res.OptimizedCost).Float64()
				total += c
			}
			b.ReportMetric(total/float64(b.N), "plan-cost")
		})
	}
}

// BenchmarkSessionSharing measures the multi-gap session chain against
// naive per-gap evaluation (the session-window extension).
func BenchmarkSessionSharing(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	var events []stream.Event
	t := int64(0)
	// Dense per-key activity (4 keys, spacing 0–1) with occasional long
	// quiet periods: sessions hold hundreds of events, so the chain's
	// sub-session merges are rare relative to raw adds.
	for i := 0; i < 300_000; i++ {
		if r.Intn(500) == 0 {
			t += int64(200 + r.Intn(200)) // quiet period → session boundary at all gaps
		} else {
			t += int64(r.Intn(2))
		}
		events = append(events, stream.Event{Time: t, Key: uint64(r.Intn(4)), Value: r.Float64()})
	}
	gaps := []int64{5, 15, 45, 135}
	b.Run("shared-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := session.Run(gaps, agg.Sum, events, &session.CollectingSink{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
	b.Run("naive-per-gap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := session.RunNaive(gaps, agg.Sum, events, &session.CollectingSink{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
}

// BenchmarkQuantileSharing measures sketch-backed shared MEDIAN against
// the holistic fallback (every window independent, exact median), the
// Section III-A extension.
func BenchmarkQuantileSharing(b *testing.B) {
	// A deep dashboard-style set: the holistic fallback folds every event
	// into all eight windows, the shared tree folds it once.
	set, err := window.NewSet(
		window.Tumbling(600), window.Tumbling(1200), window.Tumbling(2400),
		window.Tumbling(4800), window.Tumbling(9600), window.Tumbling(1800),
		window.Tumbling(3600), window.Tumbling(7200))
	if err != nil {
		b.Fatal(err)
	}
	events := benchEvents(200_000)
	b.Run("shared-sketch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := quantile.Run(set, quantile.Options{Factors: true}, events, &stream.CountingSink{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
	b.Run("holistic-fallback", func(b *testing.B) {
		p, err := plan.NewOriginal(set, agg.Median)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(p, events, &stream.CountingSink{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
}

// BenchmarkDistinctSharing measures HLL-backed shared COUNT DISTINCT
// against independent per-window evaluation (sharing is lossless for
// HLL, so this isolates pure compute savings).
func BenchmarkDistinctSharing(b *testing.B) {
	set, err := window.NewSet(
		window.Tumbling(600), window.Tumbling(1200), window.Tumbling(2400),
		window.Tumbling(4800), window.Tumbling(9600), window.Tumbling(1800),
		window.Tumbling(3600), window.Tumbling(7200))
	if err != nil {
		b.Fatal(err)
	}
	events := benchEvents(200_000)
	b.Run("shared-hll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := distinct.Run(set, distinct.Options{Factors: true}, events, &stream.CountingSink{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
	b.Run("independent-hll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range set.Sorted() {
				single := window.MustSet(w)
				if _, err := distinct.Run(single, distinct.Options{}, events, &stream.CountingSink{}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
}

// BenchmarkAblationBatchSize measures engine sensitivity to the Process
// batch size (the paper's engine consumes batched input streams).
func BenchmarkAblationBatchSize(b *testing.B) {
	set := paperSet(b)
	events := benchEvents(200_000)
	res, err := core.Optimize(set, agg.Min, core.Options{Factors: true})
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.FromGraph(res.Graph, agg.Min, plan.Factored)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{64, 1024, 65536} {
		batch := batch
		b.Run(itoa(batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := engine.New(p, &stream.CountingSink{})
				if err != nil {
					b.Fatal(err)
				}
				for off := 0; off < len(events); off += batch {
					end := off + batch
					if end > len(events) {
						end = len(events)
					}
					r.Process(events[off:end])
				}
				r.Close()
			}
			b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkSlidingBaseline measures the per-window incremental
// aggregation baseline (Two-Stacks, reference [45]) on the same query.
func BenchmarkSlidingBaseline(b *testing.B) {
	set := paperSet(b)
	events := benchEvents(200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sliding.Run(set, agg.Min, events, &stream.CountingSink{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkBaselines prints the four-way executor comparison (extension
// of Section V-F; see EXPERIMENTS.md).
func BenchmarkBaselines(b *testing.B) { benchExperiment(b, "baselines", 60_000) }

// BenchmarkCheckpoint measures snapshot and restore cost with live state.
func BenchmarkCheckpoint(b *testing.B) {
	set := paperSet(b)
	p, err := plan.NewOriginal(set, agg.Min)
	if err != nil {
		b.Fatal(err)
	}
	r, err := engine.New(p, &stream.CountingSink{})
	if err != nil {
		b.Fatal(err)
	}
	r.Process(benchEvents(50_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := r.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engine.Restore(p, &stream.CountingSink{}, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline measures the full ingest path end-to-end, the unit
// the batch-grouped pipeline optimizes as a whole: event batches pushed
// through a reorder buffer into a key-sharded parallel runner executing
// the factored plan, results to a counting sink. The ordered case is the
// steady-state (the reorder buffer's sorted fast path applies); the
// disordered case block-shuffles within the bound so every batch takes
// the heap path.
func BenchmarkPipeline(b *testing.B) {
	set := paperSet(b)
	res, err := core.Optimize(set, agg.Min, core.Options{Factors: true})
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.FromGraph(res.Graph, agg.Min, plan.Factored)
	if err != nil {
		b.Fatal(err)
	}
	ordered := benchEvents(200_000)
	disordered := append([]stream.Event(nil), ordered...)
	rnd := rand.New(rand.NewSource(7))
	const block = 32 // 8 ticks of disorder at 4 events/tick, within bound 16
	for lo := 0; lo < len(disordered); lo += block {
		hi := lo + block
		if hi > len(disordered) {
			hi = len(disordered)
		}
		rnd.Shuffle(hi-lo, func(i, j int) {
			disordered[lo+i], disordered[lo+j] = disordered[lo+j], disordered[lo+i]
		})
	}
	const batch = 512
	run := func(b *testing.B, events []stream.Event) {
		for i := 0; i < b.N; i++ {
			runner, err := parallel.New(p, &stream.CountingSink{}, 4)
			if err != nil {
				b.Fatal(err)
			}
			buf, err := reorder.New(runner, 16, reorder.Drop, nil)
			if err != nil {
				b.Fatal(err)
			}
			for off := 0; off < len(events); off += batch {
				end := off + batch
				if end > len(events) {
					end = len(events)
				}
				buf.Push(events[off:end])
			}
			buf.Close()
			runner.Close()
		}
		b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	}
	b.Run("ordered", func(b *testing.B) { run(b, ordered) })
	b.Run("disordered", func(b *testing.B) { run(b, disordered) })
}

// BenchmarkEgress measures the result path under key-heavy firing: many
// keys × small windows, so output rows — finalize, result assembly,
// routing, sink delivery — dominate over ingest. Keys round-robin at
// least as slowly as the largest window's span, so every instance emits
// one row per key it saw: ~|W| result rows per input event.
func BenchmarkEgress(b *testing.B) {
	set, err := window.NewSet(window.Tumbling(2), window.Tumbling(4), window.Tumbling(8))
	if err != nil {
		b.Fatal(err)
	}
	events := workload.Synthetic(workload.StreamConfig{
		Events: 200_000, Keys: 2048, EventsPerTick: 256, Seed: 9,
	})
	b.Run("engine", func(b *testing.B) {
		p, err := plan.NewOriginal(set, agg.Min)
		if err != nil {
			b.Fatal(err)
		}
		var rows int64
		for i := 0; i < b.N; i++ {
			sink := &stream.CountingSink{}
			if _, err := engine.Run(p, events, sink); err != nil {
				b.Fatal(err)
			}
			rows = sink.N
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
	})
	// The multiquery case adds the full serving egress: key-sharded
	// execution, batched sink flushes, and per-window subscriber routing.
	b.Run("multiquery", func(b *testing.B) {
		qs := []multiquery.Query{
			{ID: "q1", Windows: []window.Window{window.Tumbling(2), window.Tumbling(8)}},
			{ID: "q2", Windows: []window.Window{window.Tumbling(4), window.Tumbling(8)}},
		}
		mp, err := multiquery.Optimize(qs, agg.Min, core.Options{Factors: true})
		if err != nil {
			b.Fatal(err)
		}
		const batch = 512
		var rows int64
		for i := 0; i < b.N; i++ {
			rows = 0
			// Shard sinks serialize on the runner's shared-sink lock, so
			// the plain counter is safe.
			sink := mp.BatchSink(func(rb multiquery.RoutedBatch) { rows += int64(len(rb.Results)) })
			runner, err := parallel.New(mp.Combined, sink, 4)
			if err != nil {
				b.Fatal(err)
			}
			for off := 0; off < len(events); off += batch {
				end := off + batch
				if end > len(events) {
					end = len(events)
				}
				runner.Process(events[off:end])
			}
			runner.Close()
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
	})
}

// BenchmarkReorder measures the disorder-buffer overhead relative to
// direct engine ingestion.
func BenchmarkReorder(b *testing.B) {
	set := paperSet(b)
	events := benchEvents(200_000)
	p, err := plan.NewOriginal(set, agg.Min)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := engine.New(p, &stream.CountingSink{})
		if err != nil {
			b.Fatal(err)
		}
		buf, err := reorder.New(r, 8, reorder.Drop, nil)
		if err != nil {
			b.Fatal(err)
		}
		buf.Push(events)
		buf.Close()
		r.Close()
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkSketchMedian contrasts the two MEDIAN execution paths on one
// high-cardinality workload (many keys, thousands of distinct values
// per window instance): "exact" keeps every raw value per key per
// instance (storeRaw) and sorts at finalize — memory grows with the
// window span — while "sketch" routes the same query through the
// KLL-backed PERCENTILE(v, 0.5) columns, whose per-slot state is
// bounded by the sketch capacity regardless of span. B/op is the
// headline: it demonstrates the bounded-memory claim BENCH_sketch.json
// commits, and benchguard holds both paths to their baselines in CI.
func BenchmarkSketchMedian(b *testing.B) {
	set := window.MustSet(window.Tumbling(16384), window.Hopping(16384, 4096))
	const nEvents = 200_000
	rnd := rand.New(rand.NewSource(17))
	events := make([]stream.Event, nEvents)
	for i := range events {
		events[i] = stream.Event{
			Time:  int64(i / 8),
			Key:   uint64(i % 64),
			Value: float64(rnd.Intn(1 << 20)),
		}
	}
	run := func(b *testing.B, fn agg.Fn, param float64) {
		p, err := plan.NewOriginal(set, fn)
		if err != nil {
			b.Fatal(err)
		}
		p.Param = param
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(p, events, &stream.CountingSink{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	}
	b.Run("exact", func(b *testing.B) { run(b, agg.Median, 0) })
	b.Run("sketch", func(b *testing.B) { run(b, agg.Percentile, 0.5) })
}
