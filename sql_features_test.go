package factorwindows

import (
	"strings"
	"testing"
)

func TestCompileAllMultiAggregate(t *testing.T) {
	q, err := ParseQuery(`
		SELECT DeviceID, MIN(T) AS Lo, MAX(T) AS Hi, AVG(T)
		FROM Input GROUP BY DeviceID, Windows(
			TumblingWindow(tick, 20),
			TumblingWindow(tick, 40))`)
	if err != nil {
		t.Fatal(err)
	}
	// Compile refuses multi-aggregate queries, pointing at CompileAll.
	if _, err := Compile(q, Options{}); err == nil || !strings.Contains(err.Error(), "CompileAll") {
		t.Fatalf("Compile should defer to CompileAll, got %v", err)
	}
	bundles, err := CompileAll(q, Options{Factors: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 3 {
		t.Fatalf("got %d bundles", len(bundles))
	}
	events := SyntheticStream(StreamConfig{Events: 10_000, Keys: 2, EventsPerTick: 2, Seed: 5})
	for i, c := range bundles {
		fn := q.Aggregates[i].Fn
		if c.Optimization.Plan.Fn != fn {
			t.Errorf("bundle %d compiled for %v, want %v", i, c.Optimization.Plan.Fn, fn)
		}
		sink := &CollectingSink{}
		if err := c.Run(events, sink); err != nil {
			t.Fatal(err)
		}
		orig := &CollectingSink{}
		if err := Run(c.Optimization.Original, events, orig); err != nil {
			t.Fatal(err)
		}
		a, b := sink.Sorted(), orig.Sorted()
		if len(a) != len(b) {
			t.Fatalf("%v: %d vs %d results", fn, len(a), len(b))
		}
		for j := range b {
			if a[j] != b[j] {
				t.Fatalf("%v row %d: %v vs %v", fn, j, a[j], b[j])
			}
		}
	}
}

func TestWhereFiltersEvents(t *testing.T) {
	q, err := ParseQuery(`
		SELECT DeviceID, COUNT(T)
		FROM Input WHERE T >= 100 AND DeviceID = 1
		GROUP BY DeviceID, Windows(TumblingWindow(tick, 10))`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Time: 0, Key: 1, Value: 150}, // kept
		{Time: 1, Key: 1, Value: 50},  // T < 100
		{Time: 2, Key: 2, Value: 200}, // wrong device
		{Time: 3, Key: 1, Value: 100}, // kept (boundary)
	}
	sink := &CollectingSink{}
	if err := c.Run(events, sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Results) != 1 {
		t.Fatalf("got %d results: %v", len(sink.Results), sink.Results)
	}
	if got := sink.Results[0]; got.Key != 1 || got.Value != 2 {
		t.Fatalf("result %+v, want key 1 count 2", got)
	}
}

func TestWhereEmptyAfterFilter(t *testing.T) {
	q, err := ParseQuery(`
		SELECT k, SUM(v) FROM s WHERE v > 1000
		GROUP BY k, Windows(TumblingWindow(tick, 5))`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := &CollectingSink{}
	if err := c.Run([]Event{{Time: 0, Key: 1, Value: 5}}, sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Results) != 0 {
		t.Fatalf("all events filtered; got %v", sink.Results)
	}
}

func TestCompileAllNil(t *testing.T) {
	if _, err := CompileAll(nil, Options{}); err == nil {
		t.Error("nil query should fail")
	}
}
