package factorwindows

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"factorwindows/internal/agg"
	"factorwindows/internal/core"
	"factorwindows/internal/parallel"
	"factorwindows/internal/plan"
	"factorwindows/internal/slicing"
	"factorwindows/internal/sliding"
	"factorwindows/internal/stream"
	"factorwindows/internal/window"
)

// perRowResults is the egress reference implementation: for every
// window instance it folds the instance's events row by row through the
// scalar store kernels and finalizes each live key with the scalar
// FinalizeAt — no batch kernel anywhere. The batch-finalized executors
// must reproduce it exactly.
func perRowResults(set *window.Set, fn agg.Fn, events []stream.Event) []stream.Result {
	var out []stream.Result
	maxT := int64(0)
	for _, e := range events {
		if e.Time > maxT {
			maxT = e.Time
		}
	}
	slots := make(map[uint64]int32)
	var keys []uint64
	slotOf := func(k uint64) int32 {
		if s, ok := slots[k]; ok {
			return s
		}
		s := int32(len(keys))
		slots[k] = s
		keys = append(keys, k)
		return s
	}
	for _, e := range events {
		slotOf(e.Key)
	}
	nKeys := int32(len(keys))
	if nKeys == 0 {
		return nil
	}
	for _, w := range set.Sorted() {
		st := agg.NewStore(fn)
		base, spanCap := st.Alloc(nKeys)
		for start := int64(0); start <= maxT; start += w.Slide {
			end := start + w.Range
			st.Clear(base, spanCap)
			for _, e := range events {
				if e.Time >= start && e.Time < end {
					st.AddAt(base+slotOf(e.Key), e.Value)
				}
			}
			for slot := int32(0); slot < nKeys; slot++ {
				if !st.LiveAt(base + slot) {
					continue
				}
				out = append(out, stream.Result{
					W: w, Start: start, End: end, Key: keys[slot],
					Value: st.FinalizeAt(base + slot),
				})
			}
		}
	}
	return out
}

// TestQuickEgressMatchesPerRowFinalize is the batch-egress invariant as
// a property test: for random window sets, random event streams, and
// every aggregate function including MEDIAN, the batch-finalized result
// path — engine (original and factored plans), slicing, sliding, and
// key-sharded parallel execution at 1, 4 and 7 shards — produces
// exactly the rows of the per-row FinalizeAt reference.
func TestQuickEgressMatchesPerRowFinalize(t *testing.T) {
	ranges := []int64{2, 3, 4, 6, 8, 10, 12}
	f := func(seed int64, fnPick, nWindows uint8, hopping bool) bool {
		r := rand.New(rand.NewSource(seed))
		fns := agg.Functions()
		fn := fns[int(fnPick)%len(fns)]

		set := &window.Set{}
		for set.Len() < 2+int(nWindows)%3 {
			rr := ranges[r.Intn(len(ranges))]
			w := window.Tumbling(rr)
			if hopping && rr%2 == 0 {
				w = window.Hopping(rr, rr/2)
			}
			if !set.Contains(w) {
				if err := set.Add(w); err != nil {
					return false
				}
			}
		}

		events := make([]stream.Event, 0, 500)
		tick := int64(0)
		for i := 0; i < 500; i++ {
			tick += int64(r.Intn(2))
			events = append(events, stream.Event{
				Time: tick, Key: uint64(r.Intn(24)), Value: float64(r.Intn(100)),
			})
		}

		reference := perRowResults(set, fn, events)
		stream.SortResults(reference)
		check := func(rs []stream.Result) bool {
			stream.SortResults(rs)
			if len(rs) != len(reference) {
				return false
			}
			for i := range reference {
				a, b := reference[i], rs[i]
				if a.W != b.W || a.Start != b.Start || a.End != b.End || a.Key != b.Key {
					return false
				}
				if a.Value != b.Value &&
					math.Abs(a.Value-b.Value) > 1e-9*math.Max(1, math.Abs(a.Value)) {
					return false
				}
			}
			return true
		}

		orig, err := plan.NewOriginal(set, fn)
		if err != nil {
			return false
		}
		engSink := &stream.CollectingSink{}
		if err := Run(orig, events, engSink); err != nil {
			return false
		}
		if !check(engSink.Results) {
			return false
		}
		if agg.Shareable(fn) {
			// The factored plan exercises the whole-span sub-aggregate
			// hand-off (MergeSpan) between fired parents and children.
			res, err := core.Optimize(set, fn, core.Options{Factors: true})
			if err != nil {
				return false
			}
			fp, err := plan.FromGraph(res.Graph, fn, plan.Factored)
			if err != nil {
				return false
			}
			facSink := &stream.CollectingSink{}
			if err := Run(fp, events, facSink); err != nil {
				return false
			}
			if !check(facSink.Results) {
				return false
			}
			slideSink := &stream.CollectingSink{}
			if _, err := sliding.Run(set, fn, events, slideSink); err != nil {
				return false
			}
			if !check(slideSink.Results) {
				return false
			}
		}
		sliceSink := &stream.CollectingSink{}
		if _, err := slicing.Run(set, fn, events, sliceSink); err != nil {
			return false
		}
		if !check(sliceSink.Results) {
			return false
		}
		for _, shards := range []int{1, 4, 7} {
			parSink := &stream.CollectingSink{}
			if _, err := parallel.Run(orig, events, parSink, shards); err != nil {
				return false
			}
			if !check(parSink.Results) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
