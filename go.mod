module factorwindows

go 1.24
