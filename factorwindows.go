// Package factorwindows is a cost-based query optimizer and execution
// engine for multi-window streaming aggregates, reproducing "Factor
// Windows: Cost-based Query Rewriting for Optimizing Correlated Window
// Aggregates" (Wu, Bernstein, Raizman, Pavlopoulou; ICDE 2022).
//
// A query computes one aggregate function (MIN, MAX, SUM, COUNT, AVG,
// STDEV, MEDIAN) over several correlated windows of the same stream. The
// optimizer builds the window coverage graph (WCG) of the window set,
// finds the min-cost sharing structure (Algorithm 1), and optionally
// inserts factor windows — auxiliary windows not in the query that
// further cut computation (Algorithms 2–5). The resulting plan is
// executed by a single-core, push-based streaming engine; a general
// stream-slicing baseline (in the style of Scotty) is included for
// comparison.
//
// # Quick start
//
//	q, _ := factorwindows.ParseQuery(`
//	    SELECT DeviceID, MIN(Temp) FROM Input
//	    GROUP BY DeviceID, Windows(
//	        Window('20 min', TumblingWindow(minute, 20)),
//	        Window('30 min', TumblingWindow(minute, 30)),
//	        Window('40 min', TumblingWindow(minute, 40)))`)
//	c, _ := factorwindows.Compile(q, factorwindows.Options{Factors: true})
//	sink := &factorwindows.CollectingSink{}
//	c.Run(events, sink)
//
// See the examples/ directory for runnable programs and cmd/fwbench for
// the full reproduction of the paper's evaluation.
//
// Beyond the paper, the library implements its stated future-work items:
// a Steiner-pool factor search (OptimizeSteiner), session-window sharing
// chains (RunSessions), sketch-backed holistic aggregates with sharing
// (RunQuantile, RunDistinct), Apache Flink DataStream code generation
// (Flink), and key-sharded parallel execution (RunParallel). See
// extensions.go and the "Beyond the paper" section of the README.
package factorwindows

import (
	"fmt"

	"factorwindows/internal/agg"
	"factorwindows/internal/asaql"
	"factorwindows/internal/core"
	"factorwindows/internal/cost"
	"factorwindows/internal/engine"
	"factorwindows/internal/plan"
	"factorwindows/internal/slicing"
	"factorwindows/internal/stream"
	"factorwindows/internal/window"
	"factorwindows/internal/workload"
)

// Window is a range/slide window W⟨r,s⟩ in integer ticks.
type Window = window.Window

// WindowSet is a duplicate-free collection of windows.
type WindowSet = window.Set

// Tumbling returns the tumbling window W⟨r,r⟩.
func Tumbling(r int64) Window { return window.Tumbling(r) }

// Hopping returns the hopping window W⟨r,s⟩.
func Hopping(r, s int64) Window { return window.Hopping(r, s) }

// NewWindow validates and returns W⟨r,s⟩.
func NewWindow(r, s int64) (Window, error) { return window.New(r, s) }

// NewWindowSet builds a window set from the given windows.
func NewWindowSet(ws ...Window) (*WindowSet, error) { return window.NewSet(ws...) }

// Covers reports whether w1 is covered by w2 (Theorem 1 of the paper).
func Covers(w1, w2 Window) bool { return window.Covers(w1, w2) }

// Partitions reports whether w1 is partitioned by w2 (Theorem 4).
func Partitions(w1, w2 Window) bool { return window.Partitions(w1, w2) }

// AggFn identifies an aggregate function.
type AggFn = agg.Fn

// The supported aggregate functions.
const (
	Min    = agg.Min
	Max    = agg.Max
	Sum    = agg.Sum
	Count  = agg.Count
	Avg    = agg.Avg
	StdDev = agg.StdDev
	Median = agg.Median
)

// ParseAggFn parses an aggregate function name such as "MIN".
func ParseAggFn(name string) (AggFn, error) { return agg.ParseFn(name) }

// Semantics selects the coverage relation used for sharing.
type Semantics = agg.Semantics

// Semantics values. AutoSemantics (the zero value) derives the relation
// from the aggregate function: "covered by" for MIN/MAX, "partitioned
// by" for SUM/COUNT/AVG/STDEV, no sharing for holistic functions.
const (
	AutoSemantics = agg.Auto
	NoSharing     = agg.NoSharing
	PartitionedBy = agg.PartitionedBy
	CoveredBy     = agg.CoveredBy
)

// Event is one input record.
type Event = stream.Event

// Result is one window-aggregate output row.
type Result = stream.Result

// Sink consumes results.
type Sink = stream.Sink

// CollectingSink stores all results (for inspection and tests).
type CollectingSink = stream.CollectingSink

// CountingSink counts results without storing them (for benchmarks).
type CountingSink = stream.CountingSink

// Plan is an executable multi-window aggregation plan.
type Plan = plan.Plan

// Options configures the optimizer. The zero value runs Algorithm 1
// without factor windows under automatic semantics and η = 1.
type Options struct {
	// Factors enables factor-window exploration (Algorithm 3).
	Factors bool
	// Semantics optionally forces the coverage relation; see the
	// Semantics constants.
	Semantics Semantics
	// Eta is the assumed steady event rate per tick for the cost model
	// (default 1, the paper's setting).
	Eta int64
}

// Optimization is the outcome of optimizing a window set: the chosen
// plan plus the cost-model bookkeeping behind it.
type Optimization struct {
	// Plan is the rewritten plan (Kind Rewritten or Factored).
	Plan *Plan
	// Original is the naive plan evaluating each window independently.
	Original *Plan
	// PredictedSpeedup is γ_C = C_original / C_optimized per the cost
	// model of Section III-B.
	PredictedSpeedup float64
	// FactorWindows lists the auxiliary windows the optimizer inserted.
	FactorWindows []Window

	res *core.Result
}

// Explain renders the min-cost WCG behind the optimization.
func (o *Optimization) Explain() string { return o.res.Graph.String() }

// Dot renders the WCG in Graphviz DOT form.
func (o *Optimization) Dot() string { return o.res.Graph.Dot() }

// Optimize rewrites the window set's evaluation under the given
// aggregate function, returning the optimized plan and its provenance.
func Optimize(set *WindowSet, fn AggFn, opts Options) (*Optimization, error) {
	res, err := core.Optimize(set, fn, core.Options{
		Factors:   opts.Factors,
		Semantics: opts.Semantics,
		Model:     cost.Model{Eta: opts.Eta},
	})
	if err != nil {
		return nil, err
	}
	kind := plan.Rewritten
	if opts.Factors {
		kind = plan.Factored
	}
	p, err := plan.FromGraph(res.Graph, fn, kind)
	if err != nil {
		return nil, err
	}
	orig, err := plan.NewOriginal(set, fn)
	if err != nil {
		return nil, err
	}
	speedup, _ := res.Speedup().Float64()
	return &Optimization{
		Plan:             p,
		Original:         orig,
		PredictedSpeedup: speedup,
		FactorWindows:    res.FactorWindows,
		res:              res,
	}, nil
}

// OriginalPlan returns the unshared plan evaluating every window
// independently — the baseline the paper calls the "original plan".
func OriginalPlan(set *WindowSet, fn AggFn) (*Plan, error) {
	return plan.NewOriginal(set, fn)
}

// OptimizeSteiner is an alternative optimizer mode that approaches factor
// window placement as the directed Steiner-style problem of the paper's
// footnote 3: it inserts the entire eligible candidate pool into the WCG
// (bounded by poolCap; ≤ 0 uses a default), runs Algorithm 1, and prunes
// candidates that do not pay for themselves. It searches a superset of
// Algorithm 3's per-vertex candidates and its plans are never costlier
// than the factor-free rewriting.
func OptimizeSteiner(set *WindowSet, fn AggFn, opts Options, poolCap int) (*Optimization, error) {
	res, err := core.OptimizeSteiner(set, fn, core.Options{
		Factors:   true,
		Semantics: opts.Semantics,
		Model:     cost.Model{Eta: opts.Eta},
	}, poolCap)
	if err != nil {
		return nil, err
	}
	p, err := plan.FromGraph(res.Graph, fn, plan.Factored)
	if err != nil {
		return nil, err
	}
	orig, err := plan.NewOriginal(set, fn)
	if err != nil {
		return nil, err
	}
	speedup, _ := res.Speedup().Float64()
	return &Optimization{
		Plan:             p,
		Original:         orig,
		PredictedSpeedup: speedup,
		FactorWindows:    res.FactorWindows,
		res:              res,
	}, nil
}

// Query is a parsed ASA-style declarative query.
type Query = asaql.Query

// ParseQuery parses the ASA-style SQL dialect of the paper's Figure 1(a).
func ParseQuery(src string) (*Query, error) { return asaql.Parse(src) }

// Compiled is a query compiled to an executable plan.
type Compiled struct {
	Query        *Query
	Optimization *Optimization

	filter func(key uint64, value float64) bool
}

// Compile optimizes the query's window set for its aggregate function
// and returns the executable bundle. Queries with several aggregate calls
// in the SELECT list must go through CompileAll.
func Compile(q *Query, opts Options) (*Compiled, error) {
	if q == nil {
		return nil, fmt.Errorf("factorwindows: nil query")
	}
	if len(q.Aggregates) > 1 {
		return nil, fmt.Errorf("factorwindows: query has %d aggregate calls; use CompileAll", len(q.Aggregates))
	}
	return compileFn(q, q.Fn, opts)
}

// CompileAll compiles a query with one or more aggregate calls, returning
// one executable bundle per call (each aggregate gets its own optimized
// plan over the shared window set — MIN may share under "covered by"
// while AVG in the same query shares under "partitioned by").
func CompileAll(q *Query, opts Options) ([]*Compiled, error) {
	if q == nil {
		return nil, fmt.Errorf("factorwindows: nil query")
	}
	out := make([]*Compiled, 0, len(q.Aggregates))
	for _, call := range q.Aggregates {
		c, err := compileFn(q, call.Fn, opts)
		if err != nil {
			return nil, fmt.Errorf("factorwindows: %v: %w", call.Fn, err)
		}
		out = append(out, c)
	}
	return out, nil
}

func compileFn(q *Query, fn AggFn, opts Options) (*Compiled, error) {
	set, err := q.Set()
	if err != nil {
		return nil, err
	}
	o, err := Optimize(set, fn, opts)
	if err != nil {
		return nil, err
	}
	filter, err := q.Filter()
	if err != nil {
		return nil, err
	}
	return &Compiled{Query: q, Optimization: o, filter: filter}, nil
}

// Run executes the compiled plan over the events, delivering every
// window result to sink. Events must be in non-decreasing time order.
// The query's WHERE clause, if any, filters events before any window
// sees them.
func (c *Compiled) Run(events []Event, sink Sink) error {
	if c.filter != nil {
		kept := make([]Event, 0, len(events))
		for _, e := range events {
			if c.filter(e.Key, e.Value) {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	_, err := engine.Run(c.Optimization.Plan, events, sink)
	return err
}

// Runner is an incremental plan executor for streaming input: feed
// batches with Process, then Close to flush.
type Runner = engine.Runner

// NewRunner compiles a plan for incremental execution.
func NewRunner(p *Plan, sink Sink) (*Runner, error) { return engine.New(p, sink) }

// Run executes a plan over a complete event slice.
func Run(p *Plan, events []Event, sink Sink) error {
	_, err := engine.Run(p, events, sink)
	return err
}

// RunSlicing evaluates the window set with the general stream-slicing
// baseline (Scotty-style) instead of a rewritten plan.
func RunSlicing(set *WindowSet, fn AggFn, events []Event, sink Sink) error {
	_, err := slicing.Run(set, fn, events, sink)
	return err
}

// StreamConfig describes a generated event stream.
type StreamConfig = workload.StreamConfig

// SyntheticStream generates a constant-pace synthetic stream (the
// paper's Synthetic-1M/10M datasets).
func SyntheticStream(cfg StreamConfig) []Event { return workload.Synthetic(cfg) }

// SensorStream generates a DEBS-2012-like manufacturing sensor stream
// (the stand-in for the paper's Real-32M dataset).
func SensorStream(cfg StreamConfig) []Event { return workload.DEBSLike(cfg) }

// SortResults orders results canonically (window, start, key).
func SortResults(rs []Result) { stream.SortResults(rs) }
