// Trading analytics: hopping-window aggregates over a tick stream. A
// strategy watches the average traded price over 2-, 4- and 8-minute
// windows, each sliding every minute — overlapping ("hopping") windows
// over the same stream. AVG is algebraic, so sharing needs "partitioned
// by" semantics: the optimizer inserts a tumbling factor window whose
// minute-sized sub-aggregates (sum, count) feed all three hopping
// windows, instead of re-reading every tick up to eight times.
//
// Run with: go run ./examples/trading
package main

import (
	"fmt"
	"log"
	"time"

	fw "factorwindows"
)

func main() {
	const minute = 60 // one tick = one second
	set, err := fw.NewWindowSet(
		fw.Hopping(2*minute, minute),
		fw.Hopping(4*minute, minute),
		fw.Hopping(8*minute, 2*minute),
	)
	if err != nil {
		log.Fatal(err)
	}

	opt, err := fw.Optimize(set, fw.Avg, fw.Options{Factors: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windows: %v, aggregate: AVG (partitioned-by semantics)\n", set)
	fmt.Printf("factor windows: %v\n", opt.FactorWindows)
	fmt.Printf("predicted speedup: %.2fx\n\n", opt.PredictedSpeedup)
	fmt.Println(opt.Explain())

	// Four instruments, eight trades per second, two hours of ticks.
	events := fw.SyntheticStream(fw.StreamConfig{
		Events: 2 * 3600 * 8, Keys: 4, EventsPerTick: 8, Seed: 23,
	})

	for _, variant := range []struct {
		name string
		p    *fw.Plan
	}{
		{"original ", opt.Original},
		{"optimized", opt.Plan},
	} {
		sink := &fw.CountingSink{}
		start := time.Now()
		if err := fw.Run(variant.p, events, sink); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%s plan: %d trades -> %d window rows in %v (%.0f K events/s)\n",
			variant.name, len(events), sink.N, elapsed.Round(time.Millisecond),
			float64(len(events))/elapsed.Seconds()/1e3)
	}

	// Confirm both plans report identical moving averages.
	sample := events
	if len(sample) > 100_000 {
		sample = sample[:100_000]
	}
	a, b := &fw.CollectingSink{}, &fw.CollectingSink{}
	if err := fw.Run(opt.Plan, sample, a); err != nil {
		log.Fatal(err)
	}
	if err := fw.Run(opt.Original, sample, b); err != nil {
		log.Fatal(err)
	}
	ra, rb := a.Sorted(), b.Sorted()
	if len(ra) != len(rb) {
		log.Fatalf("result mismatch: %d vs %d rows", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			log.Fatalf("row %d differs: %v vs %v", i, ra[i], rb[i])
		}
	}
	fmt.Printf("\nverified: optimized and original plans agree on %d rows\n", len(ra))
	fmt.Println("sample moving averages (instrument 0, 8-minute window):")
	shown := 0
	for _, r := range ra {
		if r.W == fw.Hopping(8*minute, 2*minute) && r.Key == 0 && shown < 4 {
			fmt.Printf("  [%4d,%4d): AVG = %.2f\n", r.Start, r.End, r.Value)
			shown++
		}
	}
}
