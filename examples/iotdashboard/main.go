// IoT dashboard: the motivating scenario of the paper's introduction
// (Azure IoT Central). Several dashboard queries watch the same device
// telemetry with different refresh periods — here MIN and MAX temperature
// every 5, 10, 15, 30 and 60 minutes (tumbling windows, one tick = one
// second). The optimizer organizes the windows into a sharing hierarchy
// and inserts a factor window, and the engine streams sensor readings
// through it incrementally, as a live pipeline would.
//
// Run with: go run ./examples/iotdashboard
package main

import (
	"fmt"
	"log"
	"time"

	fw "factorwindows"
)

func main() {
	// Dashboard windows in seconds: 5, 10, 15, 30 and 60 minutes.
	set, err := fw.NewWindowSet(
		fw.Tumbling(5*60),
		fw.Tumbling(10*60),
		fw.Tumbling(15*60),
		fw.Tumbling(30*60),
		fw.Tumbling(60*60),
	)
	if err != nil {
		log.Fatal(err)
	}

	for _, fn := range []fw.AggFn{fw.Min, fw.Max} {
		opt, err := fw.Optimize(set, fn, fw.Options{Factors: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %v over %v ==\n", fn, set)
		fmt.Printf("factor windows: %v, predicted speedup %.2fx\n",
			opt.FactorWindows, opt.PredictedSpeedup)
		fmt.Println(opt.Explain())

		// Stream 12 hours of per-second readings from 16 devices,
		// incrementally in one-minute batches as a gateway would.
		events := fw.SensorStream(fw.StreamConfig{
			Events: 12 * 3600 * 4, Keys: 16, EventsPerTick: 4, Seed: 11,
		})
		sink := &fw.CollectingSink{}
		runner, err := fw.NewRunner(opt.Plan, sink)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		batch := 60 * 4 // one minute of events
		for i := 0; i < len(events); i += batch {
			end := i + batch
			if end > len(events) {
				end = len(events)
			}
			runner.Process(events[i:end])
		}
		runner.Close()
		elapsed := time.Since(start)

		fmt.Printf("%d readings -> %d dashboard rows in %v (%.0f K events/s)\n",
			len(events), len(sink.Results), elapsed.Round(time.Millisecond),
			float64(len(events))/elapsed.Seconds()/1e3)

		// The hourly panel for device 0:
		fmt.Println("hourly panel, device 0:")
		shown := 0
		for _, r := range sink.Sorted() {
			if r.W == fw.Tumbling(3600) && r.Key == 0 && shown < 4 {
				fmt.Printf("  hour starting %5ds: %v = %.0f\n", r.Start, fn, r.Value)
				shown++
			}
		}
		fmt.Println()
	}

	multiTenant()
}

// multiTenant shows the IoT Central situation directly: three tenants'
// dashboards watch the same stream with overlapping window choices. The
// multi-query optimizer computes the union once — shared windows are
// evaluated a single time and routed to every subscriber.
func multiTenant() {
	queries := []fw.MultiQuery{
		{ID: "ops-dashboard", Windows: []fw.Window{fw.Tumbling(5 * 60), fw.Tumbling(30 * 60)}},
		{ID: "exec-dashboard", Windows: []fw.Window{fw.Tumbling(30 * 60), fw.Tumbling(60 * 60)}},
		{ID: "alerting", Windows: []fw.Window{fw.Tumbling(5 * 60), fw.Tumbling(10 * 60)}},
	}
	mp, err := fw.OptimizeAll(queries, fw.Min, fw.Options{Factors: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Multi-tenant dashboards over one stream ==")
	fmt.Printf("union plan operators: %d (windows deduplicated across tenants)\n",
		len(mp.Combined.Operators()))
	fmt.Printf("W(1800,1800) subscribers: %v\n", mp.Subscribers(fw.Tumbling(30*60)))

	events := fw.SensorStream(fw.StreamConfig{Events: 2 * 3600 * 4, Keys: 4, EventsPerTick: 4, Seed: 17})
	rows := map[string]int{}
	if err := mp.Run(events, func(r fw.RoutedResult) {
		for _, id := range r.QueryIDs {
			rows[id]++
		}
	}); err != nil {
		log.Fatal(err)
	}
	for _, q := range queries {
		fmt.Printf("  %-14s received %d rows\n", q.ID, rows[q.ID])
	}
}
