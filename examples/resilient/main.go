// Resilient pipeline: runs an optimized multi-window query over an
// out-of-order sensor feed, with periodic checkpoints and a simulated
// crash half-way through. The reorder buffer restores event order inside
// a disorder bound (as Azure Stream Analytics does), and the engine
// resumes from the last snapshot without losing or duplicating any
// window result — the output is verified against an uninterrupted run.
//
// Run with: go run ./examples/resilient
package main

import (
	"fmt"
	"log"
	"math/rand"

	fw "factorwindows"
)

func main() {
	set, err := fw.NewWindowSet(fw.Tumbling(30), fw.Tumbling(60), fw.Tumbling(120))
	if err != nil {
		log.Fatal(err)
	}
	opt, err := fw.Optimize(set, fw.Max, fw.Options{Factors: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windows %v, factor windows %v, predicted speedup %.2fx\n",
		set, opt.FactorWindows, opt.PredictedSpeedup)

	// An ordered reference stream, then a disordered copy (network
	// jitter within 8 ticks).
	ordered := fw.SensorStream(fw.StreamConfig{Events: 120_000, Keys: 8, EventsPerTick: 4, Seed: 99})
	disordered := append([]fw.Event(nil), ordered...)
	rng := rand.New(rand.NewSource(1))
	for lo := 0; lo < len(disordered); lo += 32 {
		hi := lo + 32
		if hi > len(disordered) {
			hi = len(disordered)
		}
		rng.Shuffle(hi-lo, func(i, j int) {
			disordered[lo+i], disordered[lo+j] = disordered[lo+j], disordered[lo+i]
		})
	}

	// Reference: uninterrupted run over the ordered stream.
	ref := &fw.CollectingSink{}
	if err := fw.Run(opt.Plan, ordered, ref); err != nil {
		log.Fatal(err)
	}

	// Resilient run: disordered input, checkpoint every 16k events,
	// crash at ~60k, resume from the last snapshot.
	sink := &fw.CollectingSink{}
	runner, err := fw.NewRunner(opt.Plan, sink)
	if err != nil {
		log.Fatal(err)
	}
	buf, err := fw.NewReorderBuffer(runner, 16, fw.DropLate)
	if err != nil {
		log.Fatal(err)
	}

	var lastSnapshot []byte
	var snapshotAt int
	const batch = 4000
	crashAt := 60_000
	i := 0
	for i < len(disordered) {
		end := i + batch
		if end > len(disordered) {
			end = len(disordered)
		}
		buf.Push(disordered[i:end])
		i = end
		if i%16_000 == 0 {
			// Snapshots are taken at batch boundaries. The reorder
			// buffer holds back up to `bound` ticks of events; those
			// are re-pushed on recovery, so the snapshot point is the
			// boundary of what the runner has consumed.
			snap, err := fw.Snapshot(runner)
			if err != nil {
				log.Fatal(err)
			}
			lastSnapshot, snapshotAt = snap, i-buffered(buf)
		}
		if i >= crashAt && crashAt > 0 {
			fmt.Printf("simulated crash after %d events; resuming from snapshot at %d\n",
				i, snapshotAt)
			crashAt = 0
			// Recovery: new runner from the snapshot, new reorder
			// buffer, replay everything after the snapshot point.
			runner, err = fw.Restore(opt.Plan, sink, lastSnapshot)
			if err != nil {
				log.Fatal(err)
			}
			buf, err = fw.NewReorderBuffer(runner, 16, fw.DropLate)
			if err != nil {
				log.Fatal(err)
			}
			i = snapshotAt
		}
	}
	buf.Close()
	runner.Close()

	// The crash windows may have been emitted twice (once before the
	// crash, once after replay); deduplicate exactly-once per instance.
	results := dedupe(sink.Results)
	refRows := ref.Sorted()
	if len(results) != len(refRows) {
		log.Fatalf("row counts differ: %d vs %d", len(results), len(refRows))
	}
	for i := range results {
		if results[i] != refRows[i] {
			log.Fatalf("row %d differs: %v vs %v", i, results[i], refRows[i])
		}
	}
	fmt.Printf("verified: %d window results identical to the uninterrupted run\n", len(results))
	fmt.Printf("late events dropped by the disorder bound: %d\n", buf.Late())
}

func buffered(b *fw.ReorderBuffer) int { return b.Buffered() }

// dedupe keeps one copy of each (window, instance, key) row; replayed
// batches re-emit rows the pre-crash runner already delivered.
func dedupe(rs []fw.Result) []fw.Result {
	fw.SortResults(rs)
	out := rs[:0]
	for i, r := range rs {
		if i == 0 || r != rs[i-1] {
			out = append(out, r)
		}
	}
	return out
}
