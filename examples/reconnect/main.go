// Reconnect: a streaming client that survives disconnects. It runs a
// durable server with a small result ring, subscribes over the binary
// stream protocol, drops the connection mid-stream, and reconnects with
// exponential backoff using its last-seen cursor. By the time it is
// back, the ring has evicted past that cursor — the server answers the
// stale subscribe with a typed gap control frame (gap:true, the number
// of missed rows, and the first sequence still available) instead of
// silently restarting at the ring head, so the client can log the loss
// and resume without double-counting.
//
// Run with: go run ./examples/reconnect
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"factorwindows/internal/server"
	"factorwindows/internal/stream"
	"factorwindows/internal/wal"
	"factorwindows/internal/wire"
)

const query = `
SELECT Key, SUM(V) AS Total
FROM Input TIMESTAMP BY T
GROUP BY Key, Windows(TumblingWindow(tick, 1))
`

// ctrlAuxGap mirrors the server's control-frame aux bit for gap
// notices (bit 1; bit 0 is the durable ingest-ack flag).
const ctrlAuxGap = 1 << 1

// subAck is the JSON payload of subscribe acks and gap notices, as
// documented in internal/server's streaming protocol.
type subAck struct {
	Stream uint32 `json:"stream"`
	ID     string `json:"id,omitempty"`
	OK     bool   `json:"ok,omitempty"`
	EOF    bool   `json:"eof,omitempty"`
	Gap    bool   `json:"gap,omitempty"`
	Missed int64  `json:"missed,omitempty"`
	First  int64  `json:"first,omitempty"`
	Error  string `json:"error,omitempty"`
}

func main() {
	dir, err := os.MkdirTemp("", "fw-reconnect-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A durable server with a deliberately tiny result ring (16 rows),
	// so a short disconnect is enough for eviction to outrun a stale
	// cursor.
	srv, err := server.Open(server.Config{
		Shards:       2,
		Factors:      true,
		ReorderBound: 2,
		ResultBuffer: 16,
		Durable:      true,
		WALDir:       dir,
		Fsync:        wal.FsyncEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Register("q", query); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ss := server.NewStreamServer(srv)
	go ss.Serve(ln)
	defer ss.Close()
	addr := ln.Addr().String()
	fmt.Printf("streaming listener on %s\n", addr)

	// Feed one event per tick in the background; every tick closes a
	// tumbling-1 window, so result sequence numbers advance steadily.
	tick := int64(0)
	produce := func(n int) {
		for i := 0; i < n; i++ {
			ev := []stream.Event{{Time: tick, Key: 1, Value: 1}}
			if _, err := srv.Ingest(ev); err != nil {
				log.Fatal(err)
			}
			tick++
		}
	}

	cursor := int64(-1) // last sequence seen; -1 = from the beginning

	// Session 1: subscribe fresh, read a handful of rows, hang up.
	produce(12)
	cursor = runSession(addr, cursor, 8)
	fmt.Printf("disconnected at cursor %d\n", cursor)

	// While we are away the producer keeps going: the 16-row ring
	// evicts far past our cursor.
	produce(80)

	// Session 2: reconnect with exponential backoff and the stale
	// cursor. The subscribe ack arrives as a typed gap frame.
	backoff := 50 * time.Millisecond
	for attempt := 1; ; attempt++ {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			fmt.Printf("reconnect attempt %d failed (%v), retrying in %s\n", attempt, err, backoff)
			time.Sleep(backoff)
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		c.Close()
		break
	}
	cursor = runSession(addr, cursor, 8)
	fmt.Printf("caught up to cursor %d\n", cursor)
}

// runSession subscribes at cursor+1, reads rows result frames, and
// returns the new cursor. A gap notice is logged, and the cursor jumps
// forward so the rows that follow are consumed seamlessly.
func runSession(addr string, cursor int64, rows int) int64 {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	w := bufio.NewWriter(c)
	fmt.Fprintf(w, `{"op":"subscribe","stream":1,"id":"q","after":%d}`+"\n", cursor)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fr := wire.NewReader(c)
	defer fr.Close()
	seen := 0
	for seen < rows {
		f, err := fr.Next()
		if err != nil {
			log.Fatal(err)
		}
		switch f.Kind {
		case wire.KindControl:
			var ack subAck
			if err := json.Unmarshal(f.Control(), &ack); err != nil {
				log.Fatal(err)
			}
			if ack.Error != "" {
				log.Fatalf("subscribe failed: %s", ack.Error)
			}
			if ack.Gap {
				fmt.Printf("gap notice (aux bit %d): %d rows evicted, resuming at seq %d\n",
					f.Seq&ctrlAuxGap, ack.Missed, ack.First)
				cursor = ack.First - 1
			}
		case wire.KindResults:
			for i := 0; i < f.Rows() && seen < rows; i++ {
				seq, _, _, start, _, key, value := f.Result(i)
				fmt.Printf("seq=%-3d window@%-3d key=%d total=%.0f\n", seq, start, key, value)
				cursor = seq
				seen++
			}
		}
	}
	return cursor
}
