// Sessions: user-activity sessionization over several inactivity gaps at
// once — the session-window extension of the factor-windows idea.
//
// A product team watches the same click stream at three granularities:
// micro-sessions (30 s gap), visits (5 min gap) and engagement periods
// (30 min gap). Sessions with a smaller gap partition sessions with a
// larger gap — the session analogue of the paper's Theorem 4 — so the
// chain computes the 5-minute and 30-minute aggregates from sub-session
// results instead of re-reading every click.
//
// Run with: go run ./examples/sessions
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	fw "factorwindows"
)

func main() {
	// One tick = one second.
	gaps := []int64{30, 300, 1800}
	events := clickStream(500_000, 64)

	sink := &fw.CollectingSessionSink{}
	start := time.Now()
	runner, err := fw.RunSessions(gaps, fw.Sum, events, sink)
	if err != nil {
		log.Fatal(err)
	}
	shared := time.Since(start)

	naiveSink := &fw.CollectingSessionSink{}
	start = time.Now()
	var naiveUpdates int64
	for _, g := range gaps {
		r, err := fw.RunSessions([]int64{g}, fw.Sum, events, naiveSink)
		if err != nil {
			log.Fatal(err)
		}
		naiveUpdates += r.Updates()
	}
	naive := time.Since(start)

	fmt.Printf("events:           %d\n", len(events))
	fmt.Printf("sessions emitted: %d\n", len(sink.Results))
	fmt.Printf("shared chain:     %8v  (%d state updates)\n", shared.Round(time.Millisecond), runner.Updates())
	fmt.Printf("naive per-gap:    %8v  (%d state updates)\n", naive.Round(time.Millisecond), naiveUpdates)
	fmt.Printf("update reduction: %.1fx\n\n", float64(naiveUpdates)/float64(runner.Updates()))

	// Per-gap session counts and revenue distribution.
	type aggr struct {
		n       int
		revenue float64
		events  int64
	}
	perGap := map[int64]*aggr{}
	for _, s := range sink.Results {
		a := perGap[s.Gap]
		if a == nil {
			a = &aggr{}
			perGap[s.Gap] = a
		}
		a.n++
		a.revenue += s.Value
		a.events += s.Count
	}
	fmt.Println("gap        sessions   avg events   total value")
	for _, g := range gaps {
		a := perGap[g]
		fmt.Printf("%4ds   %10d   %10.1f   %11.0f\n",
			g, a.n, float64(a.events)/float64(a.n), a.revenue)
	}
}

// clickStream simulates user click bursts: each user alternates between
// active periods (clicks every 1-10 s) and idle periods long enough to
// split sessions at the various gaps.
func clickStream(n, users int) []fw.Event {
	r := rand.New(rand.NewSource(99))
	clock := make([]int64, users)
	events := make([]fw.Event, 0, n)
	for len(events) < n {
		u := r.Intn(users)
		switch {
		case r.Intn(400) == 0:
			clock[u] += int64(2000 + r.Intn(3000)) // long idle: new engagement period
		case r.Intn(60) == 0:
			clock[u] += int64(320 + r.Intn(1000)) // medium idle: new visit
		case r.Intn(20) == 0:
			clock[u] += int64(31 + r.Intn(200)) // short idle: new micro-session
		default:
			clock[u] += int64(1 + r.Intn(10)) // active clicking
		}
		events = append(events, fw.Event{
			Time: clock[u], Key: uint64(u), Value: float64(r.Intn(50)),
		})
	}
	// The chain needs a globally in-order stream.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events
}
