// Quickstart: parse a declarative multi-window query, let the cost-based
// optimizer rewrite it (with factor windows), and run it over a synthetic
// stream — comparing the optimized plan's output and speed against the
// naive plan that evaluates every window independently.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	fw "factorwindows"
)

const query = `
SELECT DeviceID, MIN(Temp) AS MinTemp
FROM Input TIMESTAMP BY EntryTime
GROUP BY DeviceID, Windows(
    Window('20 ticks', TumblingWindow(tick, 20)),
    Window('30 ticks', TumblingWindow(tick, 30)),
    Window('40 ticks', TumblingWindow(tick, 40)))
`

func main() {
	q, err := fw.ParseQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:")
	fmt.Println(q)
	fmt.Println()

	compiled, err := fw.Compile(q, fw.Options{Factors: true})
	if err != nil {
		log.Fatal(err)
	}
	opt := compiled.Optimization
	fmt.Printf("factor windows inserted: %v\n", opt.FactorWindows)
	fmt.Printf("predicted speedup (cost model): %.2fx\n\n", opt.PredictedSpeedup)
	fmt.Println("min-cost window coverage graph:")
	fmt.Println(opt.Explain())

	events := fw.SyntheticStream(fw.StreamConfig{
		Events: 2_000_000, Keys: 4, EventsPerTick: 4, Seed: 7,
	})

	optimized := measure(opt.Plan, events)
	original := measure(opt.Original, events)
	fmt.Printf("original plan:  %7.0f K events/s\n", original)
	fmt.Printf("optimized plan: %7.0f K events/s (%.2fx)\n\n", optimized, optimized/original)

	// Show a few actual results.
	sink := &fw.CollectingSink{}
	if err := compiled.Run(events[:4000], sink); err != nil {
		log.Fatal(err)
	}
	fmt.Println("first results:")
	for _, r := range sink.Sorted()[:8] {
		fmt.Println(" ", r)
	}
}

func measure(p *fw.Plan, events []fw.Event) float64 {
	sink := &fw.CountingSink{}
	start := time.Now()
	if err := fw.Run(p, events, sink); err != nil {
		log.Fatal(err)
	}
	return float64(len(events)) / time.Since(start).Seconds() / 1e3
}
