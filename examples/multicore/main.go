// Multicore: scale the optimized plan across CPU cores by key sharding.
//
// The paper evaluates single-core throughput; production deployments
// partition the stream by group key. Every shard runs the identical
// factor-window plan over its key subset, so the cost-based optimization
// and the parallelism compose. This example measures the same query at
// 1, 2, 4 and 8 shards and verifies the sharded output matches the
// single-core run exactly.
//
// Run with: go run ./examples/multicore
package main

import (
	"fmt"
	"log"
	"time"

	fw "factorwindows"
)

func main() {
	// Hopping windows keep several instances open per event — the
	// engine-bound regime where sharding pays. (With cheap tumbling-only
	// plans the partitioning overhead outweighs the per-event work.)
	set, err := fw.NewWindowSet(
		fw.Hopping(80, 10), fw.Hopping(160, 20), fw.Hopping(320, 40), fw.Hopping(640, 80))
	if err != nil {
		log.Fatal(err)
	}
	opt, err := fw.Optimize(set, fw.Max, fw.Options{Factors: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d operators, %d factor windows, predicted speedup %.2fx\n\n",
		len(opt.Plan.Operators()), opt.Plan.CountFactors(), opt.PredictedSpeedup)

	events := fw.SyntheticStream(fw.StreamConfig{
		Events: 4_000_000, Keys: 256, EventsPerTick: 64, Seed: 21,
	})

	// Reference: single-core engine.
	ref := &fw.CollectingSink{}
	start := time.Now()
	if err := fw.Run(opt.Plan, events, ref); err != nil {
		log.Fatal(err)
	}
	base := time.Since(start)
	fmt.Printf("single-core: %6.1f M events/s\n", rate(events, base))

	for _, shards := range []int{1, 2, 4, 8} {
		sink := &fw.CollectingSink{}
		start := time.Now()
		if err := fw.RunParallel(opt.Plan, events, sink, shards); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		verify(ref, sink)
		fmt.Printf("%d shards:    %6.1f M events/s (%.2fx)\n",
			shards, rate(events, elapsed), base.Seconds()/elapsed.Seconds())
	}
	fmt.Println("\nall sharded runs produced byte-identical results to single-core")
}

func rate(events []fw.Event, d time.Duration) float64 {
	return float64(len(events)) / d.Seconds() / 1e6
}

func verify(ref, got *fw.CollectingSink) {
	a, b := ref.Sorted(), got.Sorted()
	if len(a) != len(b) {
		log.Fatalf("result count mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			log.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
