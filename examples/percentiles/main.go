// Percentiles: latency dashboards over correlated windows with shared
// computation for a holistic aggregate — the Section III-A extension.
//
// An SRE dashboard shows p50/p95/p99 request latency over 1-minute,
// 5-minute, 15-minute and 1-hour tumbling windows. Exact percentiles are
// holistic, so the paper's optimizer would fall back to evaluating every
// window independently from raw events. Mergeable quantile sketches make
// the aggregate algebraic: the factor-window plan computes the 1-minute
// sketches once and the larger windows merge them.
//
// Run with: go run ./examples/percentiles
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	fw "factorwindows"
)

func main() {
	// One tick = one second; windows of 1, 5, 15 and 60 minutes.
	set, err := fw.NewWindowSet(
		fw.Tumbling(60), fw.Tumbling(300), fw.Tumbling(900), fw.Tumbling(3600))
	if err != nil {
		log.Fatal(err)
	}
	events := latencyStream(2_000_000, 8)

	for _, phi := range []float64{0.50, 0.95, 0.99} {
		sink := &fw.CollectingSink{}
		start := time.Now()
		runner, err := fw.RunQuantile(set, fw.QuantileOptions{
			Phi: phi, K: 800, Factors: true,
		}, events, sink)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("p%02.0f: %d window results in %v (%.1f M events/s, %d sketch merges, factors %v)\n",
			phi*100, len(sink.Results), elapsed.Round(time.Millisecond),
			float64(len(events))/elapsed.Seconds()/1e6, runner.Merges(), runner.Factors)
	}

	// Accuracy check: compare one window's sketch answer to the exact
	// percentile computed from raw events.
	sink := &fw.CollectingSink{}
	if _, err := fw.RunQuantile(set, fw.QuantileOptions{Phi: 0.99, K: 800, Factors: true}, events, sink); err != nil {
		log.Fatal(err)
	}
	res := pickResult(sink, fw.Tumbling(3600))
	exact, rankErr := windowAccuracy(events, res, 0.99)
	fmt.Printf("\naccuracy, hour window [%d,%d) key %d:\n", res.Start, res.End, res.Key)
	fmt.Printf("  sketch p99: %8.3f ms   exact p99: %8.3f ms\n", res.Value, exact)
	fmt.Printf("  rank error: %.3f%% (the sketch's guarantee is on rank, not value —\n", 100*rankErr)
	fmt.Printf("  tail values are sparse, so small rank errors can move the value)\n")
}

// latencyStream simulates lognormal request latencies from several
// services, with a latency regression midway through.
func latencyStream(n, services int) []fw.Event {
	r := rand.New(rand.NewSource(3))
	events := make([]fw.Event, 0, n)
	perTick := 256
	for i := 0; i < n; i++ {
		t := int64(i / perTick)
		mu := 2.0
		if i > n/2 {
			mu = 2.4 // deploy made things slower
		}
		lat := math.Exp(r.NormFloat64()*0.7 + mu)
		events = append(events, fw.Event{
			Time: t, Key: uint64(r.Intn(services)), Value: lat,
		})
	}
	return events
}

func pickResult(sink *fw.CollectingSink, w fw.Window) fw.Result {
	for _, res := range sink.Sorted() {
		if res.W == w && res.Start > 0 {
			return res
		}
	}
	log.Fatal("no result for the hour window")
	return fw.Result{}
}

// windowAccuracy returns the exact phi-percentile of the window's data
// (same rank definition as the sketch: value at rank ceil(phi·n)) and the
// normalized rank error of the sketch's answer.
func windowAccuracy(events []fw.Event, res fw.Result, phi float64) (exact, rankErr float64) {
	var vals []float64
	for _, e := range events {
		if e.Key == res.Key && e.Time >= res.Start && e.Time < res.End {
			vals = append(vals, e.Value)
		}
	}
	if len(vals) == 0 {
		return math.NaN(), math.NaN()
	}
	sort.Float64s(vals)
	idx := int(math.Ceil(phi*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	exact = vals[idx]
	rank := sort.SearchFloat64s(vals, res.Value)
	for rank < len(vals) && vals[rank] <= res.Value {
		rank++
	}
	rankErr = math.Abs(float64(rank)-phi*float64(len(vals))) / float64(len(vals))
	return exact, rankErr
}
