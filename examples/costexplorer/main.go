// Cost explorer: walks through the paper's worked examples (Examples 6,
// 7 and 8) using the optimizer as a library, printing the window
// coverage graphs, the cost arithmetic, and the factor-window choice —
// ending with the Graphviz DOT rendering of the final plan so the graphs
// of Figures 6 and 7 can be redrawn.
//
// Run with: go run ./examples/costexplorer
package main

import (
	"fmt"
	"log"

	fw "factorwindows"
)

func main() {
	example6()
	example7and8()
	mutuallyPrime()
}

// example6 reproduces Example 6: four tumbling windows 10/20/30/40, cost
// 480 -> 150 with sharing alone (Figure 6).
func example6() {
	fmt.Println("== Example 6: W(10,10), W(20,20), W(30,30), W(40,40) ==")
	set, err := fw.NewWindowSet(fw.Tumbling(10), fw.Tumbling(20), fw.Tumbling(30), fw.Tumbling(40))
	if err != nil {
		log.Fatal(err)
	}
	opt, err := fw.Optimize(set, fw.Sum, fw.Options{Factors: false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive cost 4R = 480, min-cost WCG total = 480/%.3f = %.0f\n",
		opt.PredictedSpeedup, 480/opt.PredictedSpeedup)
	fmt.Println(opt.Explain())
}

// example7and8 reproduces Examples 7 and 8: drop W(10,10); Algorithm 1
// alone reaches 246, and the factor-window search adds W(10,10) back
// (best among candidates {W(10,10), W(5,5), W(2,2)}), reaching 150
// (Figure 7).
func example7and8() {
	fmt.Println("== Examples 7 & 8: W(20,20), W(30,30), W(40,40) ==")
	set, err := fw.NewWindowSet(fw.Tumbling(20), fw.Tumbling(30), fw.Tumbling(40))
	if err != nil {
		log.Fatal(err)
	}

	noF, err := fw.Optimize(set, fw.Sum, fw.Options{Factors: false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without factor windows: speedup %.3fx (360 -> %.0f)\n",
		noF.PredictedSpeedup, 360/noF.PredictedSpeedup)
	fmt.Println(noF.Explain())

	withF, err := fw.Optimize(set, fw.Sum, fw.Options{Factors: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with factor windows %v: speedup %.3fx (360 -> %.0f)\n",
		withF.FactorWindows, withF.PredictedSpeedup, 360/withF.PredictedSpeedup)
	fmt.Println(withF.Explain())

	fmt.Println("final plan as Graphviz DOT (paste into dot -Tpng):")
	fmt.Println(withF.Dot())
}

// mutuallyPrime shows the limitation the paper calls out: tumbling
// windows with mutually prime ranges admit no sharing at all.
func mutuallyPrime() {
	fmt.Println("== Limitation: W(15,15), W(17,17), W(19,19) ==")
	set, err := fw.NewWindowSet(fw.Tumbling(15), fw.Tumbling(17), fw.Tumbling(19))
	if err != nil {
		log.Fatal(err)
	}
	opt, err := fw.Optimize(set, fw.Sum, fw.Options{Factors: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted speedup: %.3fx (no coverage structure to exploit)\n", opt.PredictedSpeedup)
	fmt.Println(opt.Explain())
}
